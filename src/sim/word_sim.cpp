#include "vcomp/sim/word_sim.hpp"

#include "vcomp/util/assert.hpp"

namespace vcomp::sim {

using netlist::GateType;

Word word_eval(GateType type, std::span<const Word> fanin) {
  switch (type) {
    case GateType::Buf:
      return fanin[0];
    case GateType::Not:
      return ~fanin[0];
    case GateType::And: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v &= fanin[i];
      return v;
    }
    case GateType::Nand: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v &= fanin[i];
      return ~v;
    }
    case GateType::Or: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v |= fanin[i];
      return v;
    }
    case GateType::Nor: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v |= fanin[i];
      return ~v;
    }
    case GateType::Xor: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v ^= fanin[i];
      return v;
    }
    case GateType::Xnor: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v ^= fanin[i];
      return ~v;
    }
    case GateType::Input:
    case GateType::Dff:
      break;
  }
  VCOMP_ENSURE(false, "word_eval on non-combinational gate");
  return 0;
}

WordSim::WordSim(const netlist::Netlist& nl) : nl_(&nl) {
  VCOMP_REQUIRE(nl.finalized(), "WordSim requires a finalized netlist");
  values_.assign(nl.num_gates(), 0);
  scratch_.reserve(16);
}

void WordSim::set_input(std::size_t i, Word v) {
  VCOMP_REQUIRE(i < nl_->num_inputs(), "input index out of range");
  values_[nl_->inputs()[i]] = v;
}

void WordSim::set_state(std::size_t i, Word v) {
  VCOMP_REQUIRE(i < nl_->num_dffs(), "state index out of range");
  values_[nl_->dffs()[i]] = v;
}

void WordSim::set_source(netlist::GateId g, Word v) {
  const auto t = nl_->gate(g).type;
  VCOMP_REQUIRE(t == GateType::Input || t == GateType::Dff,
                "set_source target must be an Input or Dff");
  values_[g] = v;
}

void WordSim::eval() {
  for (netlist::GateId id : nl_->topo_order()) {
    const netlist::Gate& g = nl_->gate(id);
    scratch_.clear();
    for (netlist::GateId f : g.fanin) scratch_.push_back(values_[f]);
    values_[id] = word_eval(g.type, scratch_);
  }
}

Word WordSim::output(std::size_t i) const {
  VCOMP_REQUIRE(i < nl_->num_outputs(), "output index out of range");
  return values_[nl_->outputs()[i]];
}

Word WordSim::next_state(std::size_t i) const {
  VCOMP_REQUIRE(i < nl_->num_dffs(), "state index out of range");
  return values_[nl_->gate(nl_->dffs()[i]).fanin[0]];
}

}  // namespace vcomp::sim
