#include "vcomp/sim/word_sim.hpp"

#include "vcomp/util/assert.hpp"

namespace vcomp::sim {

using netlist::GateType;

Word word_eval(GateType type, std::span<const Word> fanin) {
  switch (type) {
    case GateType::Buf:
      return fanin[0];
    case GateType::Not:
      return ~fanin[0];
    case GateType::And: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v &= fanin[i];
      return v;
    }
    case GateType::Nand: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v &= fanin[i];
      return ~v;
    }
    case GateType::Or: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v |= fanin[i];
      return v;
    }
    case GateType::Nor: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v |= fanin[i];
      return ~v;
    }
    case GateType::Xor: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v ^= fanin[i];
      return v;
    }
    case GateType::Xnor: {
      Word v = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) v ^= fanin[i];
      return ~v;
    }
    case GateType::Input:
    case GateType::Dff:
      break;
  }
  VCOMP_ENSURE(false, "word_eval on non-combinational gate");
  return 0;
}

WordSim::WordSim(EvalGraph::Ref graph) : eg_(std::move(graph)) {
  VCOMP_REQUIRE(eg_ != nullptr, "WordSim requires an evaluation graph");
  values_.assign(eg_->num_gates(), 0);
}

WordSim::WordSim(const netlist::Netlist& nl) : WordSim(EvalGraph::compile(nl)) {}

void WordSim::set_input(std::size_t i, Word v) {
  VCOMP_REQUIRE(i < eg_->num_inputs(), "input index out of range");
  values_[eg_->inputs()[i]] = v;
}

void WordSim::set_state(std::size_t i, Word v) {
  VCOMP_REQUIRE(i < eg_->num_dffs(), "state index out of range");
  values_[eg_->dffs()[i]] = v;
}

void WordSim::set_source(netlist::GateId g, Word v) {
  const auto t = eg_->type(g);
  VCOMP_REQUIRE(t == GateType::Input || t == GateType::Dff,
                "set_source target must be an Input or Dff");
  values_[g] = v;
}

void WordSim::eval() {
  const std::uint32_t* off = eg_->fanin_offsets();
  const netlist::GateId* ids = eg_->fanin_ids();
  Word* vals = values_.data();
  for (netlist::GateId id : eg_->schedule()) {
    const std::uint32_t b = off[id];
    vals[id] = word_eval_fused(eg_->type(id), off[id + 1] - b,
                               [&](std::size_t k) { return vals[ids[b + k]]; });
  }
}

Word WordSim::output(std::size_t i) const {
  VCOMP_REQUIRE(i < eg_->num_outputs(), "output index out of range");
  return values_[eg_->outputs()[i]];
}

Word WordSim::next_state(std::size_t i) const {
  VCOMP_REQUIRE(i < eg_->num_dffs(), "state index out of range");
  return values_[eg_->dff_input(i)];
}

}  // namespace vcomp::sim
