// AVX2 instantiation of the 512-lane sweep.  This TU alone is compiled
// with -mavx2 (see src/CMakeLists.txt); each Block is processed as two
// 32-byte chunks, one YMM VPAND/VPOR/VPXOR per gate op per chunk.  The
// getter returns nullptr when the toolchain cannot target AVX2, and the
// dispatcher additionally checks cpuid before ever calling the sweep.

#include "block_sweep_impl.hpp"

namespace vcomp::sim::detail {

#if defined(__AVX2__)

namespace {
typedef std::uint64_t YmmVec __attribute__((vector_size(32)));
}  // namespace

BlockSweepFn block_sweep_avx2() { return &block_sweep_chunked<YmmVec>; }

#else

BlockSweepFn block_sweep_avx2() { return nullptr; }

#endif

}  // namespace vcomp::sim::detail
