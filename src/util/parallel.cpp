#include "vcomp/util/parallel.hpp"

#include <cstdlib>

#include "vcomp/util/assert.hpp"

namespace vcomp::util {

namespace {

thread_local bool t_on_worker = false;
thread_local TaskContext t_task_ctx;

std::size_t env_parallelism() {
  if (const char* v = std::getenv("VCOMP_THREADS")) {
    char* end = nullptr;
    const unsigned long t = std::strtoul(v, &end, 10);
    if (end != v && *end == '\0' && t > 0)
      return std::min<std::size_t>(t, 1024);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

}  // namespace

TaskContext task_context() { return t_task_ctx; }

std::uint64_t task_token() { return t_task_ctx.token; }

void set_task_context(const TaskContext& ctx) { t_task_ctx = ctx; }

std::uint64_t new_task_token() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(env_parallelism());
  return pool;
}

ThreadPool::ThreadPool(std::size_t threads) {
  start(threads > 0 ? threads - 1 : 0);
}

ThreadPool::~ThreadPool() { stop(); }

std::size_t ThreadPool::parallelism() const {
  std::lock_guard<std::mutex> lock(m_);
  return workers_.size() + 1;
}

bool ThreadPool::on_worker() { return t_on_worker; }

void ThreadPool::start(std::size_t workers) {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = false;
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void ThreadPool::stop() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::configure(std::size_t threads) {
  VCOMP_REQUIRE(!on_worker(),
                "ThreadPool::configure must not be called from a worker");
  stop();
  {
    std::lock_guard<std::mutex> lock(m_);
    VCOMP_REQUIRE(queue_.empty(),
                  "ThreadPool::configure with tasks still queued");
  }
  start(threads > 0 ? threads - 1 : 0);
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(m_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ScopedParallelism::ScopedParallelism(std::size_t threads)
    : prev_(ThreadPool::instance().parallelism()) {
  ThreadPool::instance().configure(threads > 0 ? threads : 1);
}

ScopedParallelism::~ScopedParallelism() {
  ThreadPool::instance().configure(prev_);
}

namespace detail {

void run_on_pool(std::size_t helpers, const std::function<void()>& body) {
  struct Sync {
    std::mutex m;
    std::condition_variable cv;
    std::size_t pending;
    std::exception_ptr err;
  };
  Sync sync;
  sync.pending = helpers;
  auto& pool = ThreadPool::instance();
  // Workers execute the body under the submitter's task context, so scope
  // tokens (obs per-scope counters) and the malleable parallelism cap
  // follow the task tree across threads.
  const TaskContext ctx = task_context();
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([&sync, &body, ctx] {
      const ScopedTaskContext scope(ctx);
      try {
        body();
      } catch (...) {
        std::lock_guard<std::mutex> lock(sync.m);
        if (!sync.err) sync.err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(sync.m);
      if (--sync.pending == 0) sync.cv.notify_one();
    });
  }
  try {
    body();
  } catch (...) {
    std::lock_guard<std::mutex> lock(sync.m);
    if (!sync.err) sync.err = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(sync.m);
  sync.cv.wait(lock, [&sync] { return sync.pending == 0; });
  if (sync.err) std::rethrow_exception(sync.err);
}

}  // namespace detail

}  // namespace vcomp::util
