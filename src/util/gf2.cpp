#include "vcomp/util/gf2.hpp"

#include "vcomp/util/assert.hpp"

namespace vcomp {

void Gf2Vector::xor_with(const Gf2Vector& other) {
  VCOMP_REQUIRE(bits_ == other.bits_, "GF(2) vector width mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
}

bool Gf2Vector::dot(const Gf2Vector& other) const {
  VCOMP_REQUIRE(bits_ == other.bits_, "GF(2) vector width mismatch");
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    acc ^= words_[i] & other.words_[i];
  // Parity of acc.
  acc ^= acc >> 32;
  acc ^= acc >> 16;
  acc ^= acc >> 8;
  acc ^= acc >> 4;
  acc ^= acc >> 2;
  acc ^= acc >> 1;
  return acc & 1;
}

bool Gf2Vector::any() const {
  for (auto w : words_)
    if (w) return true;
  return false;
}

Gf2Solver::Gf2Solver(std::size_t num_vars) : vars_(num_vars) {}

bool Gf2Solver::add_equation(Gf2Vector row, bool rhs) {
  VCOMP_REQUIRE(row.size() == vars_, "equation width mismatch");
  // Reduce against existing pivots.
  for (const auto& p : pivots_) {
    if (row.get(p.pivot)) {
      row.xor_with(p.row);
      rhs ^= p.rhs;
    }
  }
  if (!row.any()) return !rhs;  // 0 = 1 is the only inconsistency

  // Find the leading variable and store as a new pivot row.
  std::size_t pivot = 0;
  for (std::size_t i = 0; i < vars_; ++i)
    if (row.get(i)) {
      pivot = i;
      break;
    }
  // Back-substitute into existing rows to keep them reduced.
  for (auto& p : pivots_) {
    if (p.row.get(pivot)) {
      p.row.xor_with(row);
      p.rhs ^= rhs;
    }
  }
  pivots_.push_back({std::move(row), rhs, pivot});
  return true;
}

Gf2Vector Gf2Solver::solve() const {
  Gf2Vector x(vars_);
  // Rows are fully reduced (reduced row echelon), so each pivot variable's
  // value is its row's rhs when free variables are zero.
  for (const auto& p : pivots_) x.set(p.pivot, p.rhs);
  return x;
}

}  // namespace vcomp
