#include "vcomp/util/rng.hpp"

#include "vcomp/util/assert.hpp"

namespace vcomp {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  VCOMP_REQUIRE(bound > 0, "Rng::below bound must be positive");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  VCOMP_REQUIRE(lo <= hi, "Rng::range requires lo <= hi");
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool Rng::chance(std::uint32_t num, std::uint32_t den) {
  VCOMP_REQUIRE(den > 0, "Rng::chance denominator must be positive");
  return below(den) < num;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::fork() { return Rng(next() ^ 0xd2b74407b1ce6e93ULL); }

}  // namespace vcomp
