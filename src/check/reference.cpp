#include "vcomp/check/reference.hpp"

#include <algorithm>
#include <atomic>

#include "vcomp/util/assert.hpp"

namespace vcomp::check {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;
using sim::Trit;
using sim::Word;

namespace {

std::atomic<Mutation> g_mutation{Mutation::None};

/// Applies the active reference mutation to one evaluated gate word.
Word mutate(GateType type, std::span<const Word> fanin, Word v) {
  if (g_mutation.load(std::memory_order_relaxed) == Mutation::NandTruthTable &&
      type == GateType::Nand) {
    Word all_ones = ~Word{0};
    for (Word w : fanin) all_ones &= w;
    return v | all_ones;  // the all-ones row reads 1 instead of 0
  }
  return v;
}

}  // namespace

void set_reference_mutation(Mutation m) {
  g_mutation.store(m, std::memory_order_relaxed);
}

Mutation reference_mutation() {
  return g_mutation.load(std::memory_order_relaxed);
}

void ref_word_eval(const Netlist& nl, std::vector<Word>& vals) {
  std::vector<Word> scratch;
  for (GateId id : nl.topo_order()) {
    const auto& g = nl.gate(id);
    scratch.clear();
    for (GateId f : g.fanin) scratch.push_back(vals[f]);
    vals[id] = mutate(g.type, scratch, sim::word_eval(g.type, scratch));
  }
}

void ref_faulty_eval(const Netlist& nl, std::vector<Word>& vals,
                     const fault::Fault& f) {
  const Word stuck = f.stuck ? ~Word{0} : Word{0};
  const auto src_type = nl.gate(f.gate).type;
  if (f.is_stem() &&
      (src_type == GateType::Input || src_type == GateType::Dff))
    vals[f.gate] = stuck;
  std::vector<Word> scratch;
  for (GateId id : nl.topo_order()) {
    const auto& g = nl.gate(id);
    scratch.clear();
    for (std::size_t k = 0; k < g.fanin.size(); ++k) {
      Word w = vals[g.fanin[k]];
      if (!f.is_stem() && f.gate == id &&
          static_cast<std::int16_t>(k) == f.pin)
        w = stuck;
      scratch.push_back(w);
    }
    Word v = mutate(g.type, scratch, sim::word_eval(g.type, scratch));
    if (f.is_stem() && f.gate == id) v = stuck;
    vals[id] = v;
  }
}

Word ref_next_state(const Netlist& nl, const std::vector<Word>& vals,
                    const fault::Fault* f, std::size_t i) {
  const GateId dff = nl.dffs()[i];
  Word w = vals[nl.gate(dff).fanin[0]];
  if (f != nullptr && !f->is_stem() && f->gate == dff && f->pin == 0)
    w = f->stuck ? ~Word{0} : Word{0};
  return w;
}

void ref_trit_eval(const Netlist& nl, std::vector<Trit>& vals) {
  std::vector<Trit> scratch;
  for (GateId id : nl.topo_order()) {
    const auto& g = nl.gate(id);
    scratch.clear();
    for (GateId f : g.fanin) scratch.push_back(vals[f]);
    vals[id] = sim::trit_eval(g.type, scratch);
  }
}

void ref_shift(std::vector<std::uint8_t>& chain,
               const std::vector<std::uint8_t>& in_bits,
               const scan::ScanOutModel& out,
               std::vector<std::uint8_t>& observed) {
  const std::size_t L = chain.size();
  observed.clear();
  for (std::uint8_t in : in_bits) {
    std::uint8_t o = 0;
    for (std::uint32_t tap : out.taps) o ^= chain[tap];
    observed.push_back(o);
    for (std::size_t p = L; p-- > 1;) chain[p] = chain[p - 1];
    chain[0] = in;
  }
}

void ref_fabric_shift(const scan::Fabric& fabric,
                      std::vector<std::uint8_t>& flat,
                      const scan::ShiftPlan& plan,
                      const std::vector<std::uint8_t>& in_bits,
                      const scan::FabricOut& out,
                      std::vector<std::uint8_t>& observed) {
  observed.clear();
  std::vector<std::uint8_t> chain, in_c, obs_c;
  std::size_t off_in = 0;
  for (std::size_t c = 0; c < fabric.num_chains(); ++c) {
    const auto off = static_cast<std::ptrdiff_t>(fabric.chain_offset(c));
    const auto len = static_cast<std::ptrdiff_t>(fabric.chain_length(c));
    chain.assign(flat.begin() + off, flat.begin() + off + len);
    in_c.assign(in_bits.begin() + static_cast<std::ptrdiff_t>(off_in),
                in_bits.begin() +
                    static_cast<std::ptrdiff_t>(off_in + plan[c]));
    ref_shift(chain, in_c, out.chains[c], obs_c);
    std::copy(chain.begin(), chain.end(), flat.begin() + off);
    observed.insert(observed.end(), obs_c.begin(), obs_c.end());
    off_in += plan[c];
  }
}

void ref_capture(std::vector<std::uint8_t>& chain,
                 const std::vector<std::uint8_t>& next_state,
                 scan::CaptureMode mode) {
  VCOMP_REQUIRE(chain.size() == next_state.size(),
                "ref_capture size mismatch");
  for (std::size_t p = 0; p < chain.size(); ++p) {
    if (mode == scan::CaptureMode::Normal)
      chain[p] = next_state[p];
    else
      chain[p] = chain[p] ^ next_state[p];
  }
}

}  // namespace vcomp::check
