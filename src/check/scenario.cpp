#include "vcomp/check/scenario.hpp"

#include <algorithm>
#include <cstdio>

#include "vcomp/netgen/netgen.hpp"
#include "vcomp/netgen/profiles.hpp"
#include "vcomp/sim/word_sim.hpp"
#include "vcomp/util/assert.hpp"
#include "vcomp/util/parallel.hpp"
#include "vcomp/util/rng.hpp"

namespace vcomp::check {

using atpg::TestVector;
using sim::Word;

namespace {

// Distinct salts keep the netlist-shape, fault-subset and schedule streams
// independent: shrinking one dimension never perturbs the others.
constexpr std::uint64_t kSubsetSalt = 0x5ab5e7c4f00dULL;
constexpr std::uint64_t kScheduleSalt = 0x5c8ed01eba5eULL;

}  // namespace

Scenario random_scenario(std::uint64_t seed) {
  Rng rng(seed);
  Scenario sc;
  sc.seed = seed;
  sc.num_pi = 2 + rng.below(9);    // 2..10
  sc.num_po = 1 + rng.below(6);    // 1..6
  sc.num_ff = 3 + rng.below(14);   // 3..16
  sc.num_gates = std::max<std::size_t>(sc.num_po + 2, 12 + rng.below(109));
  sc.max_arity = 2 + rng.below(3);  // 2..4
  sc.depth_limit = rng.chance(1, 3) ? 3 + rng.below(7) : 0;
  sc.easiness_milli = static_cast<std::uint32_t>(rng.below(901));
  sc.net_seed = rng.next();

  sc.capture =
      rng.chance(1, 3) ? scan::CaptureMode::VXor : scan::CaptureMode::Normal;
  sc.hxor_taps =
      rng.chance(1, 2) ? 0 : 2 + rng.below(std::min<std::size_t>(sc.num_ff, 6) - 1);

  if (rng.chance(1, 2)) {
    sc.shift_kind = ShiftKind::Fixed;
    sc.fixed_numerator = 3 + rng.below(5);  // the paper's 3/8 .. 7/8 points
  } else {
    sc.shift_kind = ShiftKind::Variable;
  }
  sc.cycles = 3 + rng.below(10);  // 3..12
  const auto obs = rng.below(4);
  sc.terminal_observe = obs == 0  ? 0
                        : obs == 1 ? 1 + rng.below(sc.num_ff)
                                   : sc.num_ff;
  sc.max_track_faults = 16 + rng.below(81);  // 16..96
  sc.sim_rounds = 1 + rng.below(2);

  // Fabric shape: half the cases stay on the degenerate single chain so
  // the N=1 byte-identity paths keep getting fuzzed alongside multi-chain
  // ones.  num_chains may exceed tiny circuits; materialize clamps.
  if (rng.chance(1, 2)) {
    sc.num_chains = 2 + rng.below(3);  // 2..4
    const auto pol = rng.below(3);
    sc.partition = pol == 0   ? scan::PartitionPolicy::RoundRobin
                   : pol == 1 ? scan::PartitionPolicy::Contiguous
                              : scan::PartitionPolicy::SeededRandom;
    sc.partition_seed = rng.next();
  }
  return sc;
}

scan::Fabric case_fabric(const Case& c) {
  return scan::Fabric(c.netlist, c.schedule.num_chains, c.schedule.partition,
                      c.schedule.partition_seed);
}

scan::FabricOut case_out_model(const Case& c, const scan::Fabric& fabric) {
  return c.hxor_taps > 0 ? scan::FabricOut::hxor(fabric, c.hxor_taps)
                         : scan::FabricOut::direct(fabric);
}

Case materialize(const Scenario& sc) {
  Case c;
  netgen::CircuitProfile p;
  p.name = "fuzz";
  p.num_pi = sc.num_pi;
  p.num_po = sc.num_po;
  p.num_ff = sc.num_ff;
  p.num_gates = std::max(sc.num_gates, sc.num_po);
  p.easiness = double(sc.easiness_milli) / 1000.0;
  p.max_arity = sc.max_arity;
  p.depth_limit = sc.depth_limit;
  p.seed = sc.net_seed;
  c.netlist = netgen::generate(p);
  c.faults = fault::collapsed_fault_list(c.netlist);

  // Tracked-fault mask: explicit subset wins; otherwise sample
  // max_track_faults indices from an independent stream.
  c.track.assign(c.faults.size(), 0);
  if (!sc.fault_subset.empty()) {
    for (std::uint32_t i : sc.fault_subset)
      if (i < c.track.size()) c.track[i] = 1;
  } else if (sc.max_track_faults > 0 &&
             sc.max_track_faults < c.faults.size()) {
    std::vector<std::uint32_t> all(c.faults.size());
    for (std::uint32_t i = 0; i < all.size(); ++i) all[i] = i;
    Rng srng(sc.seed ^ util::splitmix64(kSubsetSalt));
    srng.shuffle(all);
    for (std::size_t k = 0; k < sc.max_track_faults; ++k) c.track[all[k]] = 1;
  } else {
    c.track.assign(c.faults.size(), 1);
  }

  const std::size_t L = c.netlist.num_dffs();
  c.capture = sc.capture;
  c.hxor_taps = sc.hxor_taps;

  // Fabric: clamp the requested chain count into [1, L] (tiny circuits may
  // not fit the drawn count) and record the shape on the schedule so the
  // case round-trips through schedule_io and the reproducer format.
  const std::size_t nchains =
      std::min(std::max<std::size_t>(1, sc.num_chains), L);
  const scan::Fabric fabric(c.netlist, nchains, sc.partition,
                            sc.partition_seed);
  c.schedule.num_chains = fabric.num_chains();
  c.schedule.partition = fabric.policy();
  c.schedule.partition_seed = fabric.seed();
  const bool multi = fabric.num_chains() > 1;

  // Schedule construction: random vectors whose retained scan bits (per
  // chain, positions >= plan[c]) equal the fault-free fabric content,
  // advanced with a single-pattern WordSim (bit 0) — the same invariant
  // StitchTracker::apply_stitched asserts.  chain/next are flat
  // chain-major fabric images.
  Rng rng(sc.seed ^ util::splitmix64(kScheduleSalt));
  sim::WordSim sim(c.netlist);
  std::vector<std::uint8_t> chain(L, 0), next(L, 0);

  auto apply_and_capture = [&](const TestVector& v) {
    for (std::size_t i = 0; i < c.netlist.num_inputs(); ++i)
      sim.set_input(i, v.pi[i] ? ~Word{0} : Word{0});
    for (std::size_t i = 0; i < L; ++i)
      sim.set_state(i, v.ppi[i] ? ~Word{0} : Word{0});
    sim.eval();
    for (std::size_t pos = 0; pos < L; ++pos)
      next[pos] = static_cast<std::uint8_t>(
          sim.next_state(fabric.dff_at_flat(pos)) & 1);
    for (std::size_t pos = 0; pos < L; ++pos)
      chain[pos] = sc.capture == scan::CaptureMode::VXor
                       ? static_cast<std::uint8_t>(chain[pos] ^ next[pos])
                       : next[pos];
  };

  auto random_vector = [&](const scan::ShiftPlan& plan) {
    TestVector v;
    v.pi.resize(c.netlist.num_inputs());
    for (auto& b : v.pi) b = rng.bit();
    v.ppi.resize(L);
    for (std::size_t ch = 0; ch < fabric.num_chains(); ++ch) {
      const std::size_t s = plan[ch];
      const std::size_t off = fabric.chain_offset(ch);
      for (std::size_t p = 0; p < fabric.chain_length(ch); ++p)
        v.ppi[fabric.dff_at(ch, p)] =
            p >= s ? chain[off + p - s]
                   : static_cast<std::uint8_t>(rng.bit());
    }
    return v;
  };

  const std::size_t fixed_s = std::max<std::size_t>(
      1, std::min(L, L * std::min<std::size_t>(sc.fixed_numerator, 8) / 8));

  const scan::ShiftPlan full_plan = fabric.plan_for(L);
  TestVector first = random_vector(full_plan);
  for (std::size_t pos = 0; pos < L; ++pos)
    chain[pos] = first.ppi[fabric.dff_at_flat(pos)];
  c.schedule.vectors.push_back(first);
  c.schedule.shifts.push_back(L);
  if (multi) c.schedule.plans.push_back(full_plan);
  apply_and_capture(first);

  for (std::size_t cy = 0; cy < sc.cycles; ++cy) {
    const std::size_t s =
        sc.shift_kind == ShiftKind::Fixed ? fixed_s : 1 + rng.below(L);
    const scan::ShiftPlan plan = fabric.plan_for(s);
    TestVector v = random_vector(plan);
    // Post-shift fabric content is the vector's scan field by definition.
    for (std::size_t pos = 0; pos < L; ++pos)
      chain[pos] = v.ppi[fabric.dff_at_flat(pos)];
    c.schedule.vectors.push_back(v);
    c.schedule.shifts.push_back(s);
    if (multi) c.schedule.plans.push_back(plan);
    apply_and_capture(v);
  }
  c.schedule.terminal_observe = std::min(sc.terminal_observe, L);
  return c;
}

std::vector<std::uint32_t> tracked_indices(const Case& c) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < c.track.size(); ++i)
    if (c.track[i]) out.push_back(i);
  return out;
}

std::string describe(const Scenario& sc) {
  const std::string shift =
      sc.shift_kind == ShiftKind::Fixed
          ? "fixed" + std::to_string(sc.fixed_numerator) + "/8"
          : "var";
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "seed=%llu pi=%zu po=%zu ff=%zu gates=%zu arity=%zu depth=%zu "
      "ease=%u capture=%s hxor=%zu shift=%s cycles=%zu observe=%zu "
      "faults=%zu rounds=%zu chains=%zu part=%s",
      static_cast<unsigned long long>(sc.seed), sc.num_pi, sc.num_po,
      sc.num_ff, sc.num_gates, sc.max_arity, sc.depth_limit,
      sc.easiness_milli,
      sc.capture == scan::CaptureMode::VXor ? "vxor" : "normal", sc.hxor_taps,
      shift.c_str(), sc.cycles, sc.terminal_observe,
      sc.fault_subset.empty() ? sc.max_track_faults : sc.fault_subset.size(),
      sc.sim_rounds, sc.num_chains, scan::to_string(sc.partition));
  return buf;
}

}  // namespace vcomp::check
