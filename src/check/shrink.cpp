#include "vcomp/check/shrink.hpp"

namespace vcomp::check {

namespace {

/// One shrink attempt: re-materialize \p candidate and keep it iff it still
/// fails any oracle.
bool still_fails(const Scenario& candidate, Failure& failure_out) {
  try {
    const Case c = materialize(candidate);
    if (auto f = run_oracles(c, candidate)) {
      failure_out = *f;
      return true;
    }
  } catch (const std::exception& e) {
    failure_out = Failure{"exception", e.what()};
    return true;
  }
  return false;
}

}  // namespace

ShrinkResult shrink(const Scenario& sc, const Failure& failure,
                    std::size_t budget) {
  ShrinkResult r;
  r.scenario = sc;
  r.failure = failure;

  // If the effective fault subset is implicit, make it explicit once so
  // halving it below doesn't resample a different subset.
  if (r.scenario.fault_subset.empty()) {
    try {
      r.scenario.fault_subset = tracked_indices(materialize(r.scenario));
    } catch (const std::exception&) {
      // Materialization itself is the failure; nothing to pin.
    }
  }

  bool progress = true;
  while (progress && r.attempts < budget) {
    progress = false;

    // Candidate transformations, cheapest-win first.  Each either halves a
    // size field or simplifies a mode; any still-failing candidate is
    // adopted immediately and the sweep restarts.
    auto try_adopt = [&](Scenario candidate) {
      if (r.attempts >= budget) return false;
      if (candidate == r.scenario) return false;
      ++r.attempts;
      Failure f = r.failure;
      if (!still_fails(candidate, f)) return false;
      r.scenario = std::move(candidate);
      r.failure = std::move(f);
      progress = true;
      return true;
    };

    // Fewer stitched cycles.
    for (std::size_t target :
         {std::size_t{0}, r.scenario.cycles / 2, r.scenario.cycles - 1}) {
      if (r.scenario.cycles == 0) break;
      Scenario cand = r.scenario;
      cand.cycles = target;
      if (try_adopt(std::move(cand))) break;
    }

    // Smaller tracked-fault subset: drop the second half, then single
    // elements from the front.
    if (r.scenario.fault_subset.size() > 1) {
      Scenario cand = r.scenario;
      cand.fault_subset.resize(cand.fault_subset.size() / 2);
      if (!try_adopt(std::move(cand))) {
        Scenario one = r.scenario;
        one.fault_subset.erase(one.fault_subset.begin());
        try_adopt(std::move(one));
      }
    }

    // Smaller circuit.
    if (r.scenario.num_gates > r.scenario.num_po + 2) {
      Scenario cand = r.scenario;
      cand.num_gates = std::max(cand.num_po + 2, cand.num_gates / 2);
      try_adopt(std::move(cand));
    }
    if (r.scenario.num_ff > 3) {
      Scenario cand = r.scenario;
      cand.num_ff = std::max<std::size_t>(3, cand.num_ff / 2);
      try_adopt(std::move(cand));
    }

    // Degenerate fabric: one chain first, then the default partition.
    if (r.scenario.num_chains > 1) {
      Scenario cand = r.scenario;
      cand.num_chains = 1;
      try_adopt(std::move(cand));
    }
    if (r.scenario.partition != scan::PartitionPolicy::RoundRobin ||
        r.scenario.partition_seed != 0) {
      Scenario cand = r.scenario;
      cand.partition = scan::PartitionPolicy::RoundRobin;
      cand.partition_seed = 0;
      try_adopt(std::move(cand));
    }

    // Simpler modes.
    if (r.scenario.capture == scan::CaptureMode::VXor) {
      Scenario cand = r.scenario;
      cand.capture = scan::CaptureMode::Normal;
      try_adopt(std::move(cand));
    }
    if (r.scenario.hxor_taps > 0) {
      Scenario cand = r.scenario;
      cand.hxor_taps = 0;
      try_adopt(std::move(cand));
    }
    if (r.scenario.terminal_observe > 0) {
      Scenario cand = r.scenario;
      cand.terminal_observe = 0;
      try_adopt(std::move(cand));
    }
    if (r.scenario.shift_kind == ShiftKind::Variable) {
      Scenario cand = r.scenario;
      cand.shift_kind = ShiftKind::Fixed;
      cand.fixed_numerator = 4;
      try_adopt(std::move(cand));
    }

    // Fewer stimulus rounds.
    if (r.scenario.sim_rounds > 1) {
      Scenario cand = r.scenario;
      cand.sim_rounds = 1;
      try_adopt(std::move(cand));
    }
  }
  return r;
}

}  // namespace vcomp::check
