#include "vcomp/check/repro.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "vcomp/core/schedule_io.hpp"
#include "vcomp/fault/collapse.hpp"
#include "vcomp/netlist/bench_io.hpp"
#include "vcomp/util/assert.hpp"

namespace vcomp::check {

namespace {

std::string one_line(std::string s) {
  std::replace(s.begin(), s.end(), '\n', ' ');
  return s;
}

std::string next_content_line(std::istream& in, const char* what) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    return line;
  }
  VCOMP_REQUIRE(false, std::string("reproducer truncated before ") + what);
  return {};
}

/// Reads `key <value>` pairs off a header line that starts with \p tag.
std::istringstream open_tagged(const std::string& line, const char* tag) {
  std::istringstream is(line);
  std::string got;
  is >> got;
  VCOMP_REQUIRE(got == tag, "reproducer: expected '" + std::string(tag) +
                                "' line, got '" + got + "'");
  return is;
}

std::string read_block(std::istream& in, const char* begin, const char* end) {
  const std::string opener = next_content_line(in, begin);
  VCOMP_REQUIRE(opener == begin, "reproducer: expected " + std::string(begin));
  std::string line, body;
  while (std::getline(in, line)) {
    if (line == end) return body;
    body += line;
    body += '\n';
  }
  VCOMP_REQUIRE(false, std::string("reproducer: missing ") + end);
  return {};
}

}  // namespace

void write_reproducer(std::ostream& out, const Scenario& sc, const Case& c,
                      const Failure& failure) {
  out << "# vcomp fuzz reproducer\n";
  out << "# oracle: " << one_line(failure.oracle) << " -- "
      << one_line(failure.detail) << '\n';
  out << "# " << describe(sc) << '\n';
  out << "scenario seed " << sc.seed << " netseed " << sc.net_seed << '\n';
  out << "shape pi " << sc.num_pi << " po " << sc.num_po << " ff "
      << sc.num_ff << " gates " << sc.num_gates << " arity " << sc.max_arity
      << " depth " << sc.depth_limit << " easiness " << sc.easiness_milli
      << '\n';
  out << "config capture "
      << (sc.capture == scan::CaptureMode::VXor ? "vxor" : "normal")
      << " hxor " << sc.hxor_taps << " shift ";
  if (sc.shift_kind == ShiftKind::Fixed)
    out << "fixed " << sc.fixed_numerator;
  else
    out << "var";
  out << " cycles " << sc.cycles << " observe " << sc.terminal_observe
      << " maxfaults " << sc.max_track_faults << " simrounds "
      << sc.sim_rounds;
  // Multi-chain fabrics append their shape; single-chain config lines stay
  // byte-identical to the historical format.
  if (sc.num_chains > 1)
    out << " chains " << sc.num_chains << ' '
        << scan::to_string(sc.partition) << ' ' << sc.partition_seed;
  out << '\n';

  // The *effective* tracked subset, so replay never depends on the
  // subset-sampling stream.
  const auto tracked = tracked_indices(c);
  if (tracked.size() == c.faults.size()) {
    out << "faults all\n";
  } else {
    out << "faults";
    for (std::uint32_t i : tracked) out << ' ' << i;
    out << '\n';
  }

  out << "begin-netlist\n";
  netlist::write_bench(out, c.netlist);
  out << "end-netlist\n";
  out << "begin-schedule\n";
  core::write_schedule(out, c.schedule);
  out << "end-schedule\n";
}

std::string write_reproducer_string(const Scenario& sc, const Case& c,
                                    const Failure& failure) {
  std::ostringstream os;
  write_reproducer(os, sc, c, failure);
  return os.str();
}

Reproducer read_reproducer(std::istream& in) {
  Reproducer r;
  Scenario& sc = r.scenario;

  {
    auto is = open_tagged(next_content_line(in, "scenario"), "scenario");
    std::string key;
    is >> key >> sc.seed >> key >> sc.net_seed;
  }
  {
    auto is = open_tagged(next_content_line(in, "shape"), "shape");
    std::string key;
    is >> key >> sc.num_pi >> key >> sc.num_po >> key >> sc.num_ff >> key >>
        sc.num_gates >> key >> sc.max_arity >> key >> sc.depth_limit >> key >>
        sc.easiness_milli;
    VCOMP_REQUIRE(static_cast<bool>(is), "reproducer: malformed shape line");
  }
  {
    auto is = open_tagged(next_content_line(in, "config"), "config");
    std::string key, value;
    is >> key >> value;
    VCOMP_REQUIRE(value == "vxor" || value == "normal",
                  "reproducer: bad capture mode '" + value + "'");
    sc.capture = value == "vxor" ? scan::CaptureMode::VXor
                                 : scan::CaptureMode::Normal;
    is >> key >> sc.hxor_taps;
    is >> key >> value;
    if (value == "fixed") {
      sc.shift_kind = ShiftKind::Fixed;
      is >> sc.fixed_numerator;
    } else {
      VCOMP_REQUIRE(value == "var",
                    "reproducer: bad shift kind '" + value + "'");
      sc.shift_kind = ShiftKind::Variable;
    }
    is >> key >> sc.cycles >> key >> sc.terminal_observe >> key >>
        sc.max_track_faults >> key >> sc.sim_rounds;
    VCOMP_REQUIRE(static_cast<bool>(is), "reproducer: malformed config line");
    // Optional trailing fabric shape (absent in single-chain files,
    // including the whole pre-fabric corpus).
    if (is >> key) {
      VCOMP_REQUIRE(key == "chains",
                    "reproducer: unknown config key '" + key + "'");
      is >> sc.num_chains >> value >> sc.partition_seed;
      VCOMP_REQUIRE(static_cast<bool>(is),
                    "reproducer: malformed chains config");
      VCOMP_REQUIRE(scan::partition_from_string(value, sc.partition),
                    "reproducer: unknown partition policy '" + value + "'");
    }
  }

  const std::string faults_line = next_content_line(in, "faults");
  std::vector<std::uint32_t> subset;
  bool track_all = false;
  {
    auto is = open_tagged(faults_line, "faults");
    std::string tok;
    while (is >> tok) {
      if (tok == "all") {
        track_all = true;
        break;
      }
      subset.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
    }
  }

  const std::string bench = read_block(in, "begin-netlist", "end-netlist");
  const std::string sched = read_block(in, "begin-schedule", "end-schedule");

  Case& c = r.kase;
  c.netlist = netlist::read_bench_string(bench);
  c.faults = fault::collapsed_fault_list(c.netlist);
  c.schedule = core::read_schedule_string(sched);
  c.capture = sc.capture;
  // The fabric shape travels with the embedded schedule (its `chains`
  // line); the scenario's copy only matters for re-materialization during
  // shrinking.
  c.hxor_taps = sc.hxor_taps;
  if (track_all) {
    c.track.assign(c.faults.size(), 1);
  } else {
    c.track.assign(c.faults.size(), 0);
    for (std::uint32_t i : subset) {
      VCOMP_REQUIRE(i < c.track.size(),
                    "reproducer: fault index out of range");
      c.track[i] = 1;
    }
    // Pin the subset on the scenario too, so a re-materialization (e.g.
    // during shrinking) tracks exactly the same faults.
    sc.fault_subset = subset;
  }
  return r;
}

Reproducer read_reproducer_file(const std::string& path) {
  std::ifstream in(path);
  VCOMP_REQUIRE(in.good(), "cannot open reproducer file: " + path);
  return read_reproducer(in);
}

std::optional<Failure> replay_reproducer(const Reproducer& r) {
  return run_oracles(r.kase, r.scenario);
}

}  // namespace vcomp::check
