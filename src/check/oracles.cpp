#include "vcomp/check/oracles.hpp"

#include <cstdlib>
#include <map>
#include <sstream>
#include <unordered_map>

#include "vcomp/atpg/engine.hpp"
#include "vcomp/check/reference.hpp"
#include "vcomp/core/selection.hpp"
#include "vcomp/core/tracker.hpp"
#include "vcomp/fault/block_lane_sim.hpp"
#include "vcomp/fault/compact_model.hpp"
#include "vcomp/fault/fault_parallel_sim.hpp"
#include "vcomp/fault/fault_sim.hpp"
#include "vcomp/sim/block_sim.hpp"
#include "vcomp/sim/simd_dispatch.hpp"
#include "vcomp/sim/ternary_sim.hpp"
#include "vcomp/sim/word_sim.hpp"
#include "vcomp/util/parallel.hpp"
#include "vcomp/util/rng.hpp"

namespace vcomp::check {

using fault::Fault;
using netlist::GateId;
using netlist::Netlist;
using sim::Trit;
using sim::Word;

namespace {

constexpr std::uint64_t kStimulusSalt = 0x0bace5a17ed5eedULL;
constexpr std::uint64_t kFlushSalt = 0xf1a5b5eedc0ffeeULL;
constexpr std::uint64_t kAdiSalt = 0xad1de7ec7ab1e5ULL;

/// Faults the simulator oracles sample per stimulus round.
constexpr std::size_t kSimFaultSample = 48;

std::optional<Failure> fail(const char* oracle, std::string detail) {
  return Failure{oracle, std::move(detail)};
}

std::vector<std::uint32_t> sample_faults(std::size_t num_faults, Rng& rng,
                                         std::size_t want) {
  std::vector<std::uint32_t> all(num_faults);
  for (std::uint32_t i = 0; i < num_faults; ++i) all[i] = i;
  if (all.size() <= want) return all;
  rng.shuffle(all);
  all.resize(want);
  return all;
}

// ---- simulator oracles ----------------------------------------------------

std::optional<Failure> simulators_round(const Case& c,
                                        sim::EvalGraph::Ref graph, Rng& rng) {
  const Netlist& nl = c.netlist;

  // Shared random source words for this round.
  std::vector<Word> src(nl.num_gates(), 0);
  for (GateId g : nl.inputs()) src[g] = rng.next();
  for (GateId g : nl.dffs()) src[g] = rng.next();

  std::vector<Word> good = src;
  ref_word_eval(nl, good);

  // WordSim vs reference, every gate and every captured next-state.
  sim::WordSim wsim(graph);
  for (std::size_t i = 0; i < nl.num_inputs(); ++i)
    wsim.set_input(i, src[nl.inputs()[i]]);
  for (std::size_t i = 0; i < nl.num_dffs(); ++i)
    wsim.set_state(i, src[nl.dffs()[i]]);
  wsim.eval();
  for (GateId g = 0; g < nl.num_gates(); ++g)
    if (wsim.value(g) != good[g])
      return fail("word-sim", "gate " + nl.gate(g).name + " value mismatch");
  for (std::size_t i = 0; i < nl.num_dffs(); ++i)
    if (wsim.next_state(i) != ref_next_state(nl, good, nullptr, i))
      return fail("word-sim", "dff " + std::to_string(i) +
                                  " next-state mismatch");

  // TernarySim vs the plain trit-kernel reference (includes X draws).
  sim::TernarySim tsim(graph);
  std::vector<Trit> tref(nl.num_gates(), Trit::X);
  tsim.clear();
  auto draw_trit = [&] {
    const auto r = rng.below(3);
    return r == 0 ? Trit::Zero : r == 1 ? Trit::One : Trit::X;
  };
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    tref[nl.inputs()[i]] = draw_trit();
    tsim.set_input(i, tref[nl.inputs()[i]]);
  }
  for (std::size_t i = 0; i < nl.num_dffs(); ++i) {
    tref[nl.dffs()[i]] = draw_trit();
    tsim.set_state(i, tref[nl.dffs()[i]]);
  }
  tsim.eval();
  ref_trit_eval(nl, tref);
  for (GateId g = 0; g < nl.num_gates(); ++g)
    if (tsim.value(g) != tref[g])
      return fail("ternary-sim",
                  "gate " + nl.gate(g).name + " trit mismatch");

  // DiffSim vs forked reference on a fault sample.
  const auto sample = sample_faults(c.faults.size(), rng, kSimFaultSample);
  fault::DiffSim dsim(graph);
  for (std::size_t i = 0; i < nl.num_inputs(); ++i)
    dsim.good().set_input(i, src[nl.inputs()[i]]);
  for (std::size_t i = 0; i < nl.num_dffs(); ++i)
    dsim.good().set_state(i, src[nl.dffs()[i]]);
  dsim.commit_good();
  for (std::uint32_t fi : sample) {
    const Fault& f = c.faults[fi];
    std::vector<Word> bad = src;
    ref_faulty_eval(nl, bad, f);
    Word po_any = 0;
    for (GateId po : nl.outputs()) po_any |= good[po] ^ bad[po];
    std::map<std::uint32_t, Word> want;
    for (std::size_t i = 0; i < nl.num_dffs(); ++i) {
      const Word d = ref_next_state(nl, good, nullptr, i) ^
                     ref_next_state(nl, bad, &f, i);
      if (d != 0) want[static_cast<std::uint32_t>(i)] = d;
    }
    const auto eff = dsim.simulate(f);
    if (eff.po_any != po_any)
      return fail("diff-sim",
                  "po_any mismatch for " + fault::fault_name(nl, f));
    std::map<std::uint32_t, Word> got;
    for (const auto& d : eff.ppo_diffs)
      if (d.diff != 0) got[d.dff_index] |= d.diff;
    if (got != want)
      return fail("diff-sim",
                  "ppo diffs mismatch for " + fault::fault_name(nl, f));
  }

  // LaneSim vs forked reference: lane k carries pattern k of the same
  // source words plus its own fault — genuinely per-lane stimuli.
  fault::LaneSim lsim(graph);
  for (std::size_t base = 0; base < sample.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, sample.size() - base);
    lsim.clear();
    for (std::size_t k = 0; k < count; ++k) {
      const int lane = lsim.add_lane();
      for (std::size_t i = 0; i < nl.num_inputs(); ++i)
        lsim.set_pi(lane, i, (src[nl.inputs()[i]] >> k) & 1);
      for (std::size_t i = 0; i < nl.num_dffs(); ++i)
        lsim.set_state(lane, i, (src[nl.dffs()[i]] >> k) & 1);
      lsim.inject(lane, c.faults[sample[base + k]]);
    }
    lsim.eval();
    for (std::size_t k = 0; k < count; ++k) {
      const Fault& f = c.faults[sample[base + k]];
      std::vector<Word> bad = src;
      ref_faulty_eval(nl, bad, f);
      for (std::size_t o = 0; o < nl.num_outputs(); ++o)
        if (lsim.output(static_cast<int>(k), o) !=
            static_cast<bool>((bad[nl.outputs()[o]] >> k) & 1))
          return fail("lane-sim",
                      "po mismatch for " + fault::fault_name(nl, f));
      for (std::size_t i = 0; i < nl.num_dffs(); ++i)
        if (lsim.next_state(static_cast<int>(k), i) !=
            static_cast<bool>((ref_next_state(nl, bad, &f, i) >> k) & 1))
          return fail("lane-sim",
                      "next-state mismatch for " + fault::fault_name(nl, f));
    }
  }
  return std::nullopt;
}

// ---- compaction / dispatch oracles ----------------------------------------

constexpr std::uint64_t kCompactSalt = 0xc0a1e5cedc0de5ULL;

/// Sets an environment variable for the current scope and restores the
/// previous binding (including "unset") on exit.  tracker_digest() reads
/// VCOMP_COMPACT at tracker construction, so this is how the A-B below
/// flips the compaction pass per run.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

/// XOR-folds a fault effect's ppo diffs per dff index.  simulate_mapped may
/// report one diff per mapped site; duplicates on the same dff fold as XOR
/// exactly like the tracker applies them, so the folded map is the
/// comparable form.
std::map<std::uint32_t, Word> folded_ppo(const fault::DiffSim::Effect& eff) {
  std::map<std::uint32_t, Word> m;
  for (const auto& d : eff.ppo_diffs)
    if (d.diff != 0) m[d.dff_index] ^= d.diff;
  for (auto it = m.begin(); it != m.end();)
    it = it->second == 0 ? m.erase(it) : std::next(it);
  return m;
}

/// One stimulus round of the compacted-vs-original equivalence oracle:
/// WordSim gate values through the id remap, DiffSim::simulate vs
/// simulate_mapped, and LaneSim vs BlockLaneSim with mapped faults.
std::optional<Failure> compaction_round(const Case& c,
                                        const sim::EvalGraph::Ref& graph,
                                        const fault::CompactModel& model,
                                        Rng& rng) {
  const Netlist& nl = c.netlist;
  std::vector<Word> in(nl.num_inputs()), st(nl.num_dffs());
  for (auto& w : in) w = rng.next();
  for (auto& w : st) w = rng.next();

  // WordSim: every original gate's value must be carried by its value_id
  // image; dff/output order is preserved so next-states compare by index.
  sim::WordSim orig(graph), comp(model.graph());
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    orig.set_input(i, in[i]);
    comp.set_input(i, in[i]);
  }
  for (std::size_t i = 0; i < nl.num_dffs(); ++i) {
    orig.set_state(i, st[i]);
    comp.set_state(i, st[i]);
  }
  orig.eval();
  comp.eval();
  for (GateId g = 0; g < nl.num_gates(); ++g)
    if (orig.value(g) != comp.value(model.value_id(g)))
      return fail("compact", "gate " + nl.gate(g).name +
                                 " value differs on compacted graph");
  for (std::size_t i = 0; i < nl.num_dffs(); ++i)
    if (orig.next_state(i) != comp.next_state(i))
      return fail("compact", "dff " + std::to_string(i) +
                                 " next-state differs on compacted graph");

  // DiffSim: original faults on the original graph vs mapped faults on the
  // compacted graph, same committed good machine.
  const auto sample = sample_faults(c.faults.size(), rng, kSimFaultSample);
  fault::DiffSim dorig(graph), dcomp(model.graph());
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    dorig.good().set_input(i, in[i]);
    dcomp.good().set_input(i, in[i]);
  }
  for (std::size_t i = 0; i < nl.num_dffs(); ++i) {
    dorig.good().set_state(i, st[i]);
    dcomp.good().set_state(i, st[i]);
  }
  dorig.commit_good();
  dcomp.commit_good();
  for (std::uint32_t fi : sample) {
    const auto ea = dorig.simulate(c.faults[fi]);
    const auto eb = dcomp.simulate_mapped(model.mapped(fi));
    if (ea.po_any != eb.po_any)
      return fail("compact", "po_any differs for mapped " +
                                 fault::fault_name(nl, c.faults[fi]));
    if (folded_ppo(ea) != folded_ppo(eb))
      return fail("compact", "ppo diffs differ for mapped " +
                                 fault::fault_name(nl, c.faults[fi]));
  }

  // LaneSim (original faults, original graph) vs BlockLaneSim (mapped
  // faults, compacted graph).  BlockLaneSim broadcasts PIs across lanes —
  // that is the tracker's usage — so both engines get bit 0 of the PI
  // words and per-lane states from bit k.
  fault::LaneSim lsim(graph);
  fault::BlockLaneSim bsim(model.graph());
  const std::size_t count = std::min<std::size_t>(sample.size(), 64);
  for (std::size_t k = 0; k < count; ++k) {
    const int la = lsim.add_lane();
    const int lb = bsim.add_lane();
    for (std::size_t i = 0; i < nl.num_inputs(); ++i)
      lsim.set_pi(la, i, (in[i] & 1) != 0);
    for (std::size_t i = 0; i < nl.num_dffs(); ++i) {
      lsim.set_state(la, i, ((st[i] >> k) & 1) != 0);
      bsim.set_state(lb, i, ((st[i] >> k) & 1) != 0);
    }
    lsim.inject(la, c.faults[sample[k]]);
    bsim.inject_mapped(lb, model.mapped(sample[k]));
  }
  for (std::size_t i = 0; i < nl.num_inputs(); ++i)
    bsim.set_pi_all(i, (in[i] & 1) != 0);
  lsim.eval();
  bsim.eval();
  for (std::size_t k = 0; k < count; ++k) {
    const Fault& f = c.faults[sample[k]];
    for (std::size_t o = 0; o < nl.num_outputs(); ++o)
      if (bsim.output_block(o).lane(k) !=
          lsim.output(static_cast<int>(k), o))
        return fail("compact", "block-lane po differs for mapped " +
                                   fault::fault_name(nl, f));
    for (std::size_t i = 0; i < nl.num_dffs(); ++i)
      if (bsim.next_state_block(i).lane(k) !=
          lsim.next_state(static_cast<int>(k), i))
        return fail("compact",
                    "block-lane next-state differs for mapped " +
                        fault::fault_name(nl, f));
  }
  return std::nullopt;
}

/// One stimulus round of the dispatch oracle: the same 512-lane stimulus
/// through BlockSim under every available SIMD mode must produce the same
/// Block at every gate (the chunked sweeps only reorder independent lane
/// arithmetic).  active_simd() is cached per process, so the comparison
/// uses explicit constructor modes, not the environment.
std::optional<Failure> dispatch_round(const Case& c,
                                      const sim::EvalGraph::Ref& graph,
                                      Rng& rng) {
  const Netlist& nl = c.netlist;
  std::vector<sim::Block> in(nl.num_inputs(), sim::Block::zero());
  std::vector<sim::Block> st(nl.num_dffs(), sim::Block::zero());
  for (auto& b : in)
    for (std::size_t k = 0; k < sim::kBlockWords; ++k) b.w[k] = rng.next();
  for (auto& b : st)
    for (std::size_t k = 0; k < sim::kBlockWords; ++k) b.w[k] = rng.next();

  sim::BlockSim ref(graph, sim::SimdMode::Scalar);
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) ref.set_input(i, in[i]);
  for (std::size_t i = 0; i < nl.num_dffs(); ++i) ref.set_state(i, st[i]);
  ref.eval();

  for (sim::SimdMode mode : {sim::SimdMode::Avx2, sim::SimdMode::Avx512}) {
    if (!sim::simd_available(mode)) continue;
    sim::BlockSim s(graph, mode);
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) s.set_input(i, in[i]);
    for (std::size_t i = 0; i < nl.num_dffs(); ++i) s.set_state(i, st[i]);
    s.eval();
    for (GateId g = 0; g < nl.num_gates(); ++g)
      if (!(s.value(g) == ref.value(g)))
        return fail("simd-dispatch",
                    std::string("gate ") + nl.gate(g).name + " differs " +
                        std::string(sim::to_string(mode)) + " vs scalar");
  }
  return std::nullopt;
}

// ---- brute-force reference tracker ----------------------------------------

struct RefTrackerResult {
  std::vector<core::CycleStats> cycles;
  std::vector<std::uint8_t> chain_ff;  ///< final fault-free chain
  /// Per tracked fault (key = collapsed index).
  std::unordered_map<std::uint32_t, core::FaultState> state;
  std::unordered_map<std::uint32_t, std::size_t> catch_cycle;
  std::unordered_map<std::uint32_t, std::vector<std::uint8_t>> hidden_chain;
  std::size_t terminal_caught = 0;
  // Work tallies mirroring TrackerProfile: uncaught faults classified and
  // hidden faults advanced, counted per cycle the same way the tracker
  // counts its sharded/64-lane work.
  std::size_t faults_classified = 0;
  std::size_t hidden_advanced = 0;
};

/// Full-shift brute force: every tracked fault keeps a private fabric
/// image and is re-evaluated from scratch with the naive reference each
/// cycle.  No DiffSim, no LaneSim, no sharding, no fabric_diff_observable
/// — and no scan::FabricState: fabric images are flat chain-major byte
/// vectors advanced with ref_fabric_shift.
RefTrackerResult ref_track(const Case& c) {
  const Netlist& nl = c.netlist;
  const scan::Fabric fabric = case_fabric(c);
  const scan::FabricOut out_model = case_out_model(c, fabric);
  const std::size_t L = nl.num_dffs();
  const std::size_t npi = nl.num_inputs();

  RefTrackerResult r;
  const auto tracked = tracked_indices(c);
  for (std::uint32_t i : tracked) r.state[i] = core::FaultState::Uncaught;

  // Per-cycle plan: recorded per-chain plans when the schedule carries
  // them, otherwise the master shift apportioned the way the tracker does.
  auto plan_at = [&](std::size_t ci) -> scan::ShiftPlan {
    return c.schedule.plans.empty() ? fabric.plan_for(c.schedule.shifts[ci])
                                    : c.schedule.plans[ci];
  };

  std::vector<std::uint8_t> chain_ff(L, 0);
  std::vector<Word> vals(nl.num_gates(), 0);
  std::vector<std::uint8_t> ns_ff(L, 0), ns_f(L, 0), po_ff, po_f;
  std::vector<std::uint8_t> in_bits, obs_ff, obs_f, pre_capture, new_chain;
  po_ff.resize(nl.num_outputs());
  po_f.resize(nl.num_outputs());

  auto load_sources = [&](const atpg::TestVector& v,
                          const std::vector<std::uint8_t>& chain) {
    for (std::size_t i = 0; i < npi; ++i)
      vals[nl.inputs()[i]] = v.pi[i] ? ~Word{0} : Word{0};
    for (std::size_t pos = 0; pos < L; ++pos)
      vals[nl.dffs()[fabric.dff_at_flat(pos)]] =
          chain[pos] ? ~Word{0} : Word{0};
  };

  for (std::size_t ci = 0; ci < c.schedule.vectors.size(); ++ci) {
    const auto& v = c.schedule.vectors[ci];
    const std::size_t s = c.schedule.shifts[ci];
    const std::size_t cycle = ci + 1;
    core::CycleStats st;
    st.shift = s;

    if (ci == 0) {
      for (std::size_t pos = 0; pos < L; ++pos)
        chain_ff[pos] = v.ppi[fabric.dff_at_flat(pos)];
    } else {
      const scan::ShiftPlan plan = plan_at(ci);
      // Scan-in streams, chain-major: chain c's bit j enters its head on
      // that chain's cycle j, so after plan[c] shifts head position p
      // holds the vector's scan bit for in-chain position p.
      in_bits.resize(s);
      std::size_t off_in = 0;
      for (std::size_t ch = 0; ch < fabric.num_chains(); ++ch) {
        for (std::size_t j = 0; j < plan[ch]; ++j)
          in_bits[off_in + j] = v.ppi[fabric.dff_at(ch, plan[ch] - 1 - j)];
        off_in += plan[ch];
      }
      ref_fabric_shift(fabric, chain_ff, plan, in_bits, out_model, obs_ff);
      for (std::uint32_t i : tracked) {
        if (r.state[i] != core::FaultState::Hidden) continue;
        auto& chain_f = r.hidden_chain[i];
        ref_fabric_shift(fabric, chain_f, plan, in_bits, out_model, obs_f);
        if (obs_f != obs_ff) {
          r.state[i] = core::FaultState::Caught;
          r.catch_cycle[i] = cycle;
          r.hidden_chain.erase(i);
          ++st.caught_at_shift;
        }
      }
    }

    // Fault-free apply & capture.
    load_sources(v, chain_ff);
    ref_word_eval(nl, vals);
    for (std::size_t o = 0; o < nl.num_outputs(); ++o)
      po_ff[o] = static_cast<std::uint8_t>(vals[nl.outputs()[o]] & 1);
    for (std::size_t pos = 0; pos < L; ++pos)
      ns_ff[pos] = static_cast<std::uint8_t>(
          ref_next_state(nl, vals, nullptr, fabric.dff_at_flat(pos)) & 1);
    pre_capture = chain_ff;
    ref_capture(chain_ff, ns_ff, c.capture);

    // Every surviving tracked fault, from scratch.
    for (std::uint32_t i : tracked) {
      if (r.state[i] == core::FaultState::Caught) continue;
      const bool was_hidden = r.state[i] == core::FaultState::Hidden;
      if (was_hidden)
        ++r.hidden_advanced;
      else
        ++r.faults_classified;
      const std::vector<std::uint8_t>& chain_pre =
          was_hidden ? r.hidden_chain[i] : pre_capture;
      const Fault& f = c.faults[i];
      load_sources(v, chain_pre);
      ref_faulty_eval(nl, vals, f);
      for (std::size_t o = 0; o < nl.num_outputs(); ++o)
        po_f[o] = static_cast<std::uint8_t>(vals[nl.outputs()[o]] & 1);
      if (po_f != po_ff) {
        r.state[i] = core::FaultState::Caught;
        r.catch_cycle[i] = cycle;
        if (was_hidden) r.hidden_chain.erase(i);
        ++st.caught_at_po;
        continue;
      }
      for (std::size_t pos = 0; pos < L; ++pos)
        ns_f[pos] = static_cast<std::uint8_t>(
            ref_next_state(nl, vals, &f, fabric.dff_at_flat(pos)) & 1);
      new_chain = chain_pre;
      ref_capture(new_chain, ns_f, c.capture);
      if (new_chain == chain_ff) {
        if (was_hidden) {
          r.state[i] = core::FaultState::Uncaught;
          r.hidden_chain.erase(i);
          ++st.hidden_reverted;
        }
      } else {
        if (!was_hidden) ++st.new_hidden;
        r.state[i] = core::FaultState::Hidden;
        r.hidden_chain[i] = new_chain;
      }
    }

    st.hidden_after = r.hidden_chain.size();
    r.cycles.push_back(st);
  }

  // Terminal observation: shift both machines and compare what the ATE
  // actually reads (independent of scan::fabric_diff_observable).  The
  // master observation size apportions over the chains exactly as the
  // tracker's scalar terminal_observe does.
  const std::size_t st_obs = c.schedule.terminal_observe;
  if (st_obs > 0) {
    const std::size_t final_cycle = c.schedule.vectors.size() + 1;
    const scan::ShiftPlan tplan = fabric.plan_for(st_obs);
    in_bits.assign(st_obs, 0);
    std::vector<std::uint8_t> tmp_ff, tmp_f;
    std::vector<std::uint32_t> observed_caught;
    for (const auto& [i, chain_f] : r.hidden_chain) {
      tmp_ff = chain_ff;
      tmp_f = chain_f;
      ref_fabric_shift(fabric, tmp_ff, tplan, in_bits, out_model, obs_ff);
      ref_fabric_shift(fabric, tmp_f, tplan, in_bits, out_model, obs_f);
      if (obs_f != obs_ff) observed_caught.push_back(i);
    }
    for (std::uint32_t i : observed_caught) {
      r.state[i] = core::FaultState::Caught;
      r.catch_cycle[i] = final_cycle;
      r.hidden_chain.erase(i);
      ++r.terminal_caught;
    }
  }

  r.chain_ff = chain_ff;
  return r;
}

// ---- stitched tracker run -------------------------------------------------

struct TrackerRun {
  std::vector<core::CycleStats> cycles;
  std::vector<std::uint8_t> chain_ff;
  std::unordered_map<std::uint32_t, core::FaultState> state;
  std::unordered_map<std::uint32_t, std::size_t> catch_cycle;
  std::unordered_map<std::uint32_t, std::vector<std::uint8_t>> hidden_chain;
  std::size_t terminal_caught = 0;
  std::size_t faults_classified = 0;
  std::size_t hidden_advanced = 0;
};

TrackerRun run_tracker(const Case& c) {
  const scan::Fabric fabric = case_fabric(c);
  core::StitchTracker tracker(c.netlist, c.faults, c.capture, fabric,
                              case_out_model(c, fabric), c.track);
  TrackerRun out;
  out.cycles.push_back(tracker.apply_first(c.schedule.vectors[0]));
  for (std::size_t ci = 1; ci < c.schedule.vectors.size(); ++ci) {
    // Recorded per-chain plans are ground truth when present; otherwise
    // the scalar overload apportions the master shift with plan_for.
    if (!c.schedule.plans.empty())
      out.cycles.push_back(tracker.apply_stitched(c.schedule.vectors[ci],
                                                  c.schedule.plans[ci]));
    else
      out.cycles.push_back(tracker.apply_stitched(c.schedule.vectors[ci],
                                                  c.schedule.shifts[ci]));
  }
  if (c.schedule.terminal_observe > 0)
    out.terminal_caught = tracker.terminal_observe(c.schedule.terminal_observe);
  tracker.state().flat_bits(out.chain_ff);
  // Read the work counters through the deterministic view (no wall-clock
  // fields can leak into the comparison below).
  const obs::CounterSet counters = tracker.profile().counters_only();
  out.faults_classified = counters.get("tracker.faults_classified");
  out.hidden_advanced = counters.get("tracker.hidden_advanced");
  for (std::uint32_t i : tracked_indices(c)) {
    out.state[i] = tracker.sets().state(i);
    if (out.state[i] == core::FaultState::Caught)
      out.catch_cycle[i] = tracker.sets().catch_cycle(i);
    else if (out.state[i] == core::FaultState::Hidden)
      tracker.sets().hidden_state(i).flat_bits(out.hidden_chain[i]);
  }
  return out;
}

std::string stats_str(const core::CycleStats& st) {
  std::ostringstream os;
  os << "shift=" << st.shift << " caught_at_shift=" << st.caught_at_shift
     << " caught_at_po=" << st.caught_at_po
     << " new_hidden=" << st.new_hidden
     << " hidden_reverted=" << st.hidden_reverted
     << " hidden_after=" << st.hidden_after;
  return os.str();
}

// ---- ATPG engine oracle ----------------------------------------------------

constexpr std::uint64_t kAtpgSalt = 0xa19ebfa57c0be5ULL;

/// Faults the engine-vs-engine oracle samples per round.
constexpr std::size_t kAtpgFaultSample = 12;

/// Reference fault-sim evaluations per Success cube.  Each evaluation
/// checks 64 random completions at once (one per bit lane).
constexpr std::size_t kCubeEvals = 2;

/// Verifies one Success cube: every pinned scan cell must carry its pin,
/// and every random completion of the X positions must detect the fault at
/// a primary output or a captured next-state under the naive reference.
/// Word-parallel: fixed positions become all-0/all-1 words, X positions
/// random words, so each of the 64 bit lanes is an independent completion
/// and detection must hold in *every* lane.
std::optional<std::string> atpg_cube_error(const Netlist& nl, const Fault& f,
                                           const atpg::Cube& cube,
                                           const atpg::PpiConstraints& cons,
                                           Rng& rng) {
  for (std::size_t i = 0; i < nl.num_dffs(); ++i) {
    const Trit pin = cons.at(i);
    if (pin != Trit::X && cube.ppi[i] != pin)
      return "cube violates pinned scan cell " + std::to_string(i);
  }
  for (std::size_t rep = 0; rep < kCubeEvals; ++rep) {
    std::vector<Word> good(nl.num_gates(), 0);
    auto completion = [&](Trit t) {
      return t == Trit::One    ? ~Word{0}
             : t == Trit::Zero ? Word{0}
                               : rng.next();
    };
    for (std::size_t i = 0; i < nl.num_inputs(); ++i)
      good[nl.inputs()[i]] = completion(cube.pi[i]);
    for (std::size_t i = 0; i < nl.num_dffs(); ++i)
      good[nl.dffs()[i]] = completion(cube.ppi[i]);
    std::vector<Word> bad = good;
    ref_word_eval(nl, good);
    ref_faulty_eval(nl, bad, f);
    Word detected = 0;
    for (GateId po : nl.outputs()) detected |= good[po] ^ bad[po];
    for (std::size_t i = 0; i < nl.num_dffs(); ++i)
      detected |= ref_next_state(nl, good, nullptr, i) ^
                  ref_next_state(nl, bad, &f, i);
    if (detected != ~Word{0})
      return "a completion of the cube misses detection";
  }
  return std::nullopt;
}

/// Random PPI constraints: half the draws are all-free, the rest pin a
/// random ~third of the scan cells.
atpg::PpiConstraints random_constraints(const Netlist& nl, Rng& rng) {
  atpg::PpiConstraints cons;
  if (rng.below(2) == 0) return cons;
  cons.fixed.assign(nl.num_dffs(), Trit::X);
  for (auto& t : cons.fixed)
    if (rng.below(3) == 0) t = rng.below(2) != 0 ? Trit::One : Trit::Zero;
  return cons;
}

}  // namespace

std::optional<Failure> check_simulators(const Case& c,
                                        std::uint64_t stimulus_seed,
                                        std::size_t rounds) {
  const auto graph = sim::EvalGraph::compile(c.netlist);
  Rng rng(stimulus_seed);
  for (std::size_t round = 0; round < rounds; ++round) {
    auto f = simulators_round(c, graph, rng);
    if (f) {
      f->detail = "round " + std::to_string(round) + ": " + f->detail;
      return f;
    }
  }
  return std::nullopt;
}

std::optional<Failure> check_compaction(const Case& c,
                                        std::uint64_t stimulus_seed,
                                        std::size_t rounds) {
  const auto graph = sim::EvalGraph::compile(c.netlist);
  const fault::CompactModel model(graph, c.faults.faults(), /*enable=*/true);
  Rng rng(stimulus_seed);
  for (std::size_t round = 0; round < rounds; ++round) {
    auto f = compaction_round(c, graph, model, rng);
    if (!f) f = dispatch_round(c, graph, rng);
    if (f) {
      f->detail = "round " + std::to_string(round) + ": " + f->detail;
      return f;
    }
  }
  // Full-tracker A-B: the stitched run must be byte-identical with the
  // compaction pass forced on and off.
  std::string on, off;
  {
    ScopedEnv env("VCOMP_COMPACT", "1");
    on = tracker_digest(c);
  }
  {
    ScopedEnv env("VCOMP_COMPACT", "0");
    off = tracker_digest(c);
  }
  if (on != off)
    return fail("compact",
                "tracker digest differs between VCOMP_COMPACT=1 and =0");
  return std::nullopt;
}

std::optional<Failure> check_flush(const Case& c, std::uint64_t flush_seed,
                                   std::size_t rounds) {
  const scan::Fabric fabric = case_fabric(c);
  const scan::FabricOut out = case_out_model(c, fabric);
  const std::size_t L = fabric.total_length();
  const scan::ShiftPlan full = fabric.plan_for(L);
  Rng rng(flush_seed);
  std::vector<std::uint8_t> state(L), flush(L), zeros(L, 0);
  std::vector<std::uint8_t> img, end_s0, end_0f, obs_fab, obs_s0, obs_0f,
      obs_ref;
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::string tag = "round " + std::to_string(round) + ": ";
    for (auto& b : state) b = rng.bit();
    for (auto& b : flush) b = rng.bit();

    // Reference decomposition of a full flush: state alone, stream alone.
    img = state;
    ref_fabric_shift(fabric, img, full, zeros, out, obs_s0);
    end_s0 = img;
    img.assign(L, 0);
    ref_fabric_shift(fabric, img, full, flush, out, obs_0f);
    end_0f = img;

    // Compiled path on the combined stimulus; superposition must hold bit
    // for bit on the observed stream and the post-flush contents.
    scan::FabricState fs(fabric);
    fs.load(state);
    fs.shift(full, flush, out, obs_fab);
    for (std::size_t k = 0; k < L; ++k)
      if (obs_fab[k] != (obs_s0[k] ^ obs_0f[k]))
        return fail("flush", tag + "full-flush observation violates GF(2) "
                                   "superposition at stream bit " +
                                 std::to_string(k));
    fs.flat_bits(img);
    for (std::size_t k = 0; k < L; ++k)
      if (img[k] != (end_s0[k] ^ end_0f[k]))
        return fail("flush", tag + "post-flush contents violate GF(2) "
                                   "superposition at flat cell " +
                                 std::to_string(k));
    // A full flush replaces every chain's contents with its own reversed
    // scan-in stream — no bit may leak across a chain boundary.
    for (std::size_t ch = 0; ch < fabric.num_chains(); ++ch) {
      const std::size_t off = fabric.chain_offset(ch);
      const std::size_t len = fabric.chain_length(ch);
      for (std::size_t p = 0; p < len; ++p)
        if (img[off + p] != flush[off + len - 1 - p])
          return fail("flush", tag + "full flush corrupted chain " +
                                   std::to_string(ch) + " position " +
                                   std::to_string(p));
    }

    // Partial plan: the compiled shift must match the naive reference and
    // slide — never corrupt — each chain's retained region.
    const std::size_t s = 1 + rng.below(L);
    const scan::ShiftPlan plan = fabric.plan_for(s);
    std::vector<std::uint8_t> in(flush.begin(),
                                 flush.begin() + static_cast<std::ptrdiff_t>(s));
    scan::FabricState ps(fabric);
    ps.load(state);
    ps.shift(plan, in, out, obs_fab);
    img = state;
    ref_fabric_shift(fabric, img, plan, in, out, obs_ref);
    if (obs_fab != obs_ref)
      return fail("flush",
                  tag + "partial-shift observations diverge from the naive "
                        "reference (master shift " +
                      std::to_string(s) + ")");
    ps.flat_bits(end_s0);  // reuse as the compiled post-shift image
    if (end_s0 != img)
      return fail("flush",
                  tag + "partial-shift contents diverge from the naive "
                        "reference (master shift " +
                      std::to_string(s) + ")");
    for (std::size_t ch = 0; ch < fabric.num_chains(); ++ch) {
      const std::size_t off = fabric.chain_offset(ch);
      const std::size_t len = fabric.chain_length(ch);
      for (std::size_t p = plan[ch]; p < len; ++p)
        if (end_s0[off + p] != state[off + p - plan[ch]])
          return fail("flush", tag + "retained region of chain " +
                                   std::to_string(ch) +
                                   " corrupted at position " +
                                   std::to_string(p));
    }
  }
  return std::nullopt;
}

std::optional<Failure> check_atpg(const Case& c, std::uint64_t seed,
                                  std::size_t rounds) {
  const Netlist& nl = c.netlist;
  const auto graph = sim::EvalGraph::compile(nl);
  const tmeas::Scoap scoap(*graph);
  const auto podem = atpg::make_engine(atpg::EngineKind::Podem, graph, scoap);
  const auto sat = atpg::make_engine(atpg::EngineKind::Sat, graph, scoap);

  Rng rng(seed);
  for (std::size_t round = 0; round < rounds; ++round) {
    const auto cons = random_constraints(nl, rng);
    const auto sample = sample_faults(c.faults.size(), rng, kAtpgFaultSample);
    for (std::uint32_t fi : sample) {
      const Fault& f = c.faults[fi];
      const auto rp = podem->generate(f, &cons);
      const auto rs = sat->generate(f, &cons);
      if (rp.status == atpg::PodemStatus::Success)
        if (auto err = atpg_cube_error(nl, f, rp.cube, cons, rng))
          return fail("atpg",
                      "podem: " + *err + " for " + fault::fault_name(nl, f));
      if (rs.status == atpg::PodemStatus::Success)
        if (auto err = atpg_cube_error(nl, f, rs.cube, cons, rng))
          return fail("atpg",
                      "sat: " + *err + " for " + fault::fault_name(nl, f));
      // Definitive verdicts must never contradict; Aborted claims nothing.
      if (rp.status == atpg::PodemStatus::Untestable &&
          rs.status == atpg::PodemStatus::Success)
        return fail("atpg", "podem proves untestable but sat found a cube "
                            "for " +
                                fault::fault_name(nl, f));
      if (rs.status == atpg::PodemStatus::Untestable &&
          rp.status == atpg::PodemStatus::Success)
        return fail("atpg", "sat proves untestable but podem found a cube "
                            "for " +
                                fault::fault_name(nl, f));
    }
  }
  return std::nullopt;
}

std::optional<Failure> check_tracker(const Case& c) {
  const TrackerRun got = run_tracker(c);
  const RefTrackerResult want = ref_track(c);

  if (got.chain_ff != want.chain_ff)
    return fail("tracker", "fault-free chain diverges from naive reference");
  for (std::size_t ci = 0; ci < want.cycles.size(); ++ci)
    if (!(got.cycles[ci] == want.cycles[ci]))
      return fail("tracker", "cycle " + std::to_string(ci + 1) +
                                 " stats: tracker {" +
                                 stats_str(got.cycles[ci]) + "} vs ref {" +
                                 stats_str(want.cycles[ci]) + "}");
  if (got.terminal_caught != want.terminal_caught)
    return fail("tracker",
                "terminal observe caught " +
                    std::to_string(got.terminal_caught) + " vs ref " +
                    std::to_string(want.terminal_caught));
  if (got.faults_classified != want.faults_classified)
    return fail("tracker", "faults_classified counter " +
                               std::to_string(got.faults_classified) +
                               " vs ref tally " +
                               std::to_string(want.faults_classified));
  if (got.hidden_advanced != want.hidden_advanced)
    return fail("tracker", "hidden_advanced counter " +
                               std::to_string(got.hidden_advanced) +
                               " vs ref tally " +
                               std::to_string(want.hidden_advanced));
  for (const auto& [i, st] : want.state) {
    const auto it = got.state.find(i);
    if (it == got.state.end() || it->second != st)
      return fail("tracker",
                  "fault " + fault::fault_name(c.netlist, c.faults[i]) +
                      " final state mismatch");
    if (st == core::FaultState::Caught &&
        got.catch_cycle.at(i) != want.catch_cycle.at(i))
      return fail("tracker",
                  "fault " + fault::fault_name(c.netlist, c.faults[i]) +
                      " catch cycle " +
                      std::to_string(got.catch_cycle.at(i)) + " vs ref " +
                      std::to_string(want.catch_cycle.at(i)));
    if (st == core::FaultState::Hidden &&
        got.hidden_chain.at(i) != want.hidden_chain.at(i))
      return fail("tracker",
                  "fault " + fault::fault_name(c.netlist, c.faults[i]) +
                      " surviving hidden chain mismatch");
  }
  return std::nullopt;
}

// ---- ADI oracle -----------------------------------------------------------

namespace {

/// Naive O(vectors × faults) Accidental Detection Index: one reference
/// evaluation per (vector, fault) pair, single-pattern words, no graph, no
/// shards, no pattern packing.  The independent half of check_adi.
std::vector<std::uint32_t> ref_adi_counts(
    const Netlist& nl, const std::vector<Fault>& faults,
    const std::vector<atpg::TestVector>& vectors) {
  std::vector<std::uint32_t> counts(faults.size(), 0);
  for (const auto& v : vectors) {
    std::vector<Word> src(nl.num_gates(), 0);
    for (std::size_t i = 0; i < nl.num_inputs(); ++i)
      src[nl.inputs()[i]] = v.pi[i] ? ~Word{0} : Word{0};
    for (std::size_t i = 0; i < nl.num_dffs(); ++i)
      src[nl.dffs()[i]] = v.ppi[i] ? ~Word{0} : Word{0};
    std::vector<Word> good = src;
    ref_word_eval(nl, good);
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      const Fault& f = faults[fi];
      std::vector<Word> bad = src;
      ref_faulty_eval(nl, bad, f);
      bool detected = false;
      for (GateId po : nl.outputs())
        if (good[po] != bad[po]) {
          detected = true;
          break;
        }
      for (std::size_t i = 0; !detected && i < nl.num_dffs(); ++i)
        if (ref_next_state(nl, good, nullptr, i) !=
            ref_next_state(nl, bad, &f, i))
          detected = true;
      if (detected) ++counts[fi];
    }
  }
  return counts;
}

}  // namespace

std::optional<Failure> check_adi(const Case& c, std::uint64_t seed,
                                 std::size_t rounds) {
  const Netlist& nl = c.netlist;
  Rng rng(seed);
  // Vector pool: every stimulus of the case's schedule plus a few random
  // vectors, so the counts exercise both structured and arbitrary states.
  std::vector<atpg::TestVector> vectors = c.schedule.vectors;
  vectors.insert(vectors.end(), c.schedule.extra.begin(),
                 c.schedule.extra.end());
  for (std::size_t r = 0; r < rounds; ++r) {
    atpg::TestVector v;
    v.pi.resize(nl.num_inputs());
    for (auto& b : v.pi) b = rng.bit();
    v.ppi.resize(nl.num_dffs());
    for (auto& b : v.ppi) b = rng.bit();
    vectors.push_back(std::move(v));
  }
  // The tracked subset keeps the naive reference affordable on big cases.
  const std::vector<std::uint32_t> idx = tracked_indices(c);
  std::vector<Fault> subset;
  subset.reserve(idx.size());
  for (std::uint32_t i : idx) subset.push_back(c.faults[i]);

  const auto fast =
      core::adi_counts(sim::EvalGraph::compile(nl), subset, vectors);
  const auto ref = ref_adi_counts(nl, subset, vectors);
  for (std::size_t k = 0; k < subset.size(); ++k)
    if (fast[k] != ref[k])
      return fail("adi",
                  "fault " + fault::fault_name(nl, subset[k]) + " adi " +
                      std::to_string(fast[k]) + " vs reference " +
                      std::to_string(ref[k]) + " over " +
                      std::to_string(vectors.size()) + " vectors");
  return std::nullopt;
}

std::string tracker_digest(const Case& c) {
  const TrackerRun run = run_tracker(c);
  std::ostringstream os;
  for (const auto& st : run.cycles)
    os << st.shift << ',' << st.caught_at_shift << ',' << st.caught_at_po
       << ',' << st.new_hidden << ',' << st.hidden_reverted << ','
       << st.hidden_after << ';';
  os << '|';
  for (std::uint8_t b : run.chain_ff) os << char('0' + b);
  os << '|' << run.terminal_caught << '|' << run.faults_classified << ','
     << run.hidden_advanced << '|';
  // Deterministic fault order: tracked_indices is ascending.
  for (std::uint32_t i : tracked_indices(c)) {
    os << i << ':' << static_cast<int>(run.state.at(i));
    const auto cc = run.catch_cycle.find(i);
    if (cc != run.catch_cycle.end()) os << '@' << cc->second;
    const auto hc = run.hidden_chain.find(i);
    if (hc != run.hidden_chain.end()) {
      os << '=';
      for (std::uint8_t b : hc->second) os << char('0' + b);
    }
    os << ';';
  }
  return os.str();
}

std::optional<Failure> run_oracles(const Case& c, const Scenario& sc) {
  try {
    if (auto f = check_simulators(
            c, sc.seed ^ util::splitmix64(kStimulusSalt), sc.sim_rounds))
      return f;
    if (auto f = check_compaction(
            c, sc.seed ^ util::splitmix64(kCompactSalt), sc.sim_rounds))
      return f;
    if (auto f = check_flush(c, sc.seed ^ util::splitmix64(kFlushSalt),
                             sc.sim_rounds))
      return f;
    if (auto f = check_atpg(c, sc.seed ^ util::splitmix64(kAtpgSalt),
                            sc.sim_rounds))
      return f;
    if (auto f = check_adi(c, sc.seed ^ util::splitmix64(kAdiSalt),
                           sc.sim_rounds))
      return f;
    return check_tracker(c);
  } catch (const std::exception& e) {
    return Failure{"exception", e.what()};
  }
}

}  // namespace vcomp::check
