#include "vcomp/check/runner.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "vcomp/check/repro.hpp"
#include "vcomp/check/shrink.hpp"
#include "vcomp/obs/obs.hpp"
#include "vcomp/util/parallel.hpp"

namespace vcomp::check {

namespace {

constexpr std::uint64_t kCaseSalt = 0xca5e5eedf022ea11ULL;

struct CheckMetrics {
  obs::Counter cases = obs::counter("check.cases");
  obs::Counter failures = obs::counter("check.failures");
  obs::Timer case_seconds = obs::timer("check.case_seconds");
};

const CheckMetrics& check_metrics() {
  static const CheckMetrics m;
  return m;
}

}  // namespace

std::uint64_t case_seed(std::uint64_t master_seed, std::size_t index) {
  // Pure function of (master, index): the sequence is identical for every
  // thread count, machine and time budget.
  return util::splitmix64(master_seed ^ util::splitmix64(kCaseSalt + index));
}

FuzzStats run_fuzz(const FuzzOptions& opts) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto deadline =
      opts.minutes > 0
          ? start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(opts.minutes * 60.0))
          : Clock::time_point::max();

  FuzzStats stats;

  auto log = [&](const std::string& msg) {
    if (opts.log != nullptr) *opts.log << "[vcomp_fuzz] " << msg << '\n';
  };

  auto write_failure = [&](const Scenario& sc, const Failure& f) {
    if (opts.repro_dir.empty()) return;
    try {
      const Case c = materialize(sc);
      std::filesystem::create_directories(opts.repro_dir);
      const std::string path =
          opts.repro_dir + "/repro-" + std::to_string(sc.seed) + ".txt";
      std::ofstream out(path);
      write_reproducer(out, sc, c, f);
      if (out.good()) {
        stats.repro_paths.push_back(path);
        log("wrote reproducer " + path);
      }
    } catch (const std::exception& e) {
      log(std::string("could not write reproducer: ") + e.what());
    }
  };

  for (std::size_t index = 0;; ++index) {
    if (opts.cases > 0 && stats.cases_run >= opts.cases) break;
    if (Clock::now() >= deadline) break;

    const std::uint64_t seed = case_seed(opts.seed, index);
    Scenario sc = random_scenario(seed);

    const obs::Span case_span("check.case", check_metrics().case_seconds);
    check_metrics().cases.inc();
    std::optional<Failure> failure;
    try {
      const Case c = materialize(sc);
      failure = run_oracles(c, sc);
      if (!failure && opts.identity_threads > 1) {
        std::string d1, dk;
        {
          util::ScopedParallelism serial(1);
          d1 = tracker_digest(c);
        }
        {
          util::ScopedParallelism wide(opts.identity_threads);
          dk = tracker_digest(c);
        }
        if (d1 != dk)
          failure = Failure{
              "thread-identity",
              "tracker digest differs between 1 and " +
                  std::to_string(opts.identity_threads) + " threads"};
      }
    } catch (const std::exception& e) {
      failure = Failure{"exception", e.what()};
    }

    ++stats.cases_run;

    if (!failure) {
      if (stats.cases_run % 1000 == 0)
        log(std::to_string(stats.cases_run) + " cases clean");
      continue;
    }

    ++stats.failures;
    check_metrics().failures.inc();
    log("case " + std::to_string(index) + " (" + describe(sc) +
        ") FAILED [" + failure->oracle + "] " + failure->detail);
    if (stats.first_failure.empty())
      stats.first_failure = failure->oracle + ": " + failure->detail +
                            " (seed " + std::to_string(seed) + ")";

    Scenario final_sc = sc;
    Failure final_failure = *failure;
    // Thread-identity failures are invisible to run_oracles, so the
    // shrinker cannot preserve them; keep the original scenario.
    if (opts.shrink_failures && failure->oracle != "thread-identity") {
      const ShrinkResult sr = shrink(sc, *failure, opts.shrink_budget);
      final_sc = sr.scenario;
      final_failure = sr.failure;
      log("shrunk to (" + describe(final_sc) + ") after " +
          std::to_string(sr.attempts) + " attempts");
    }
    write_failure(final_sc, final_failure);

    if (stats.failures >= opts.max_failures) break;
  }

  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  log(std::to_string(stats.cases_run) + " cases, " +
      std::to_string(stats.failures) + " failures, " +
      std::to_string(seconds) + "s");
  return stats;
}

}  // namespace vcomp::check
