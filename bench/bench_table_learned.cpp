// Learned schedules vs the paper's best fixed-shift rows.
//
// Two learned rows per circuit, both against the best *fixed* Table-2
// reference (the strongest schedule a designer could pick without search):
//  * adi — variable shift with the fault list in ascending Accidental
//    Detection Index order (rarely-accidentally-detected faults first);
//  * ga  — a per-cycle shift schedule evolved by core::evolve_schedule
//    (quick-fitness search, seed pinned), then re-run at full strength.
//
// Each row runs under a scoped obs window, so its counters cover the whole
// learned flow (GA search evals included) and are byte-identical for every
// VCOMP_THREADS value — tools/check_bench.py gates them exactly, and the
// committed BENCH_learned.json doubles as a cross-machine determinism
// artifact for the learned paths.
//
// Env: VCOMP_QUICK=1 restricts to s1423; VCOMP_CIRCUITS selects circuits;
// VCOMP_BENCH_JSON overrides the output path (default BENCH_learned.json).

#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "vcomp/core/ga_schedule.hpp"
#include "vcomp/obs/obs.hpp"

using namespace vcomp;

namespace {

// Best fixed-shift m of the paper's Table 2 per circuit (both circuits'
// best fixed row is the 7/8 shift).  The learned rows carry this as
// `paper_best_m`; check_bench.py --require-learned-win asserts at least
// one committed row beats it.
const std::map<std::string, double> kPaperBestFixedM = {
    {"s1423", 0.73},
    {"s5378", 0.77},
};

/// Runs \p body under a fresh scoped obs window and returns the window's
/// counters — the same pattern the serve daemon and vcomp_stitch --row use,
/// so the captured counters are thread-count invariant by the same
/// contract.
template <typename Body>
obs::CounterSet scoped_counters(Body&& body) {
  const std::uint64_t token = util::new_task_token();
  obs::Registry::instance().begin_scope(token);
  {
    const util::ScopedTaskContext scope(util::TaskContext{token, nullptr});
    body();
  }
  obs::CounterSet counters =
      obs::Registry::instance().snapshot_scope(token).counters_only();
  obs::Registry::instance().end_scope(token);
  return counters;
}

}  // namespace

int main() {
  std::printf("=== Learned schedules: ADI ordering and GA shift search vs "
              "the paper's best fixed rows ===\n\n");

  std::vector<netgen::CircuitProfile> profiles = {netgen::profile("s1423"),
                                                  netgen::profile("s5378")};
  profiles = benchutil::select_circuits(std::move(profiles), 1);

  report::Table table(
      {"circ", "config", "TV", "ex", "m", "t", "paper best fixed m"});
  benchutil::BenchJson json("learned", "BENCH_learned.json");

  const auto labs = core::make_labs(profiles);  // parallel baselines
  for (const auto& lab_ptr : labs) {
    const auto& lab = *lab_ptr;
    const double paper_best = kPaperBestFixedM.at(lab.name());
    auto emit = [&](const char* config, const benchutil::TimedResult& tr,
                    obs::CounterSet counters) {
      json.add(lab.name(), config, tr, std::move(counters),
               {{"paper_best_m", paper_best}});
      table.add_row({lab.name(), config,
                     report::Table::num(tr.result.vectors_applied),
                     report::Table::num(tr.result.extra_full_vectors),
                     report::Table::ratio(tr.result.memory_ratio),
                     report::Table::ratio(tr.result.time_ratio),
                     benchutil::ref_str(paper_best)});
    };

    // Row 1: ADI-ordered targeting under the variable shift policy.
    {
      core::StitchOptions opts;
      opts.selection = core::SelectionPolicy::Adi;
      benchutil::Stopwatch sw;
      benchutil::TimedResult tr;
      const obs::CounterSet counters =
          scoped_counters([&] { tr.result = lab.run(opts); });
      tr.seconds = sw.seconds();
      emit("adi", tr, counters);
      std::fprintf(stderr, "[learned] %s adi done in %.1fs\n",
                   lab.name().c_str(), tr.seconds);
    }

    // Row 2: GA-evolved shift schedule (budgets sized for a laptop-scale
    // run; the pinned seed makes the whole search reproducible).
    {
      core::StitchOptions opts;  // most-faults selection, chromosome shifts
      core::GaOptions gopts;
      gopts.population = 6;
      gopts.generations = 3;
      gopts.genes = 8;
      benchutil::Stopwatch sw;
      benchutil::TimedResult tr;
      core::GaResult gr;
      const obs::CounterSet counters = scoped_counters([&] {
        gr = core::evolve_schedule(lab, opts, gopts);
        tr.result = lab.run(core::apply_ga_schedule(opts, gr));
      });
      tr.seconds = sw.seconds();
      emit("ga", tr, counters);
      std::fprintf(stderr,
                   "[learned] %s ga done in %.1fs (%zu evals, quick m "
                   "trajectory %.3f -> %.3f)\n",
                   lab.name().c_str(), tr.seconds, gr.evals,
                   gr.trajectory.front(), gr.trajectory.back());
    }
  }

  std::printf("%s", table.to_string().c_str());
  const std::string path = json.write();
  if (!path.empty()) std::printf("bench JSON written to %s\n", path.c_str());
  return 0;
}
