// Evaluation-kernel microbenchmark: raw throughput of the compiled
// evaluation core (EvalGraph + fused kernels) that every simulator in the
// flow runs on.
//
// For a spread of circuit profiles it emits one row per *dispatch width*:
//  * word64        — WordSim::eval, the 64-lane scalar kernel;
//  * block-scalar  — BlockSim::eval, 512 lanes through the portable sweep;
//  * block-avx2 / block-avx512 — the same 512-lane sweep through the
//    vectorized translation units (rows appear only where the CPU + build
//    support the ISA).
// Every row reports gate_evals_per_sec (sweep gate evaluations per second)
// and lane_gate_evals_per_sec (gate evals × lane count — the
// width-comparable throughput number; the ≥4× SIMD acceptance target in
// ISSUE 6 reads this field).  The word64 row additionally carries the
// per-circuit one-offs: compile_seconds, ternary-kernel and DiffSim query
// rates.
//
// Results go to $VCOMP_BENCH_JSON (default BENCH_simkernel.json) so future
// PRs can diff eval throughput; rows are keyed (circuit, dispatch) for
// tools/check_bench.py.  See EXPERIMENTS.md for methodology.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "vcomp/fault/fault.hpp"
#include "vcomp/fault/fault_sim.hpp"
#include "vcomp/netgen/netgen.hpp"
#include "vcomp/sim/block_sim.hpp"
#include "vcomp/sim/eval_graph.hpp"
#include "vcomp/sim/simd_dispatch.hpp"
#include "vcomp/sim/ternary_sim.hpp"
#include "vcomp/sim/word_sim.hpp"
#include "vcomp/util/rng.hpp"

namespace {

using namespace vcomp;
using benchutil::Stopwatch;
using sim::Word;

struct KernelRow {
  std::string circuit;
  std::string dispatch;
  std::size_t lanes = 0;
  std::size_t gates = 0;
  std::size_t sched = 0;
  double gate_evals_per_sec = 0;
  // One-off per-circuit extras, emitted on the word64 row only (negative =
  // absent from JSON).
  double compile_seconds = -1;
  double trit_evals_per_sec = -1;
  double diff_faults_per_sec = -1;
};

/// Repeats \p body (one "round" = \p per_round units) until the target
/// wall-time is hit; returns units per second.
template <typename Body>
double measure(double target_seconds, double per_round, Body&& body) {
  // Warm-up round: touches every array once before the clock starts.
  body();
  Stopwatch sw;
  std::size_t rounds = 0;
  do {
    body();
    ++rounds;
  } while (sw.seconds() < target_seconds);
  return double(rounds) * per_round / sw.seconds();
}

void bench_circuit(const netgen::CircuitProfile& profile,
                   double target_seconds, std::vector<KernelRow>& rows) {
  const netlist::Netlist nl = netgen::generate(profile);

  Stopwatch compile_sw;
  const auto eg = sim::EvalGraph::compile(nl);
  const double compile_seconds = compile_sw.seconds();
  const std::size_t sched = eg->schedule().size();

  Rng rng(7);

  KernelRow word;
  word.circuit = profile.name;
  word.dispatch = "word64";
  word.lanes = 64;
  word.gates = nl.num_gates();
  word.sched = sched;
  word.compile_seconds = compile_seconds;

  // Word kernel: full combinational sweeps over fresh random stimuli.
  {
    sim::WordSim ws(eg);
    word.gate_evals_per_sec = measure(target_seconds, double(sched), [&] {
      for (std::size_t i = 0; i < nl.num_inputs(); ++i)
        ws.set_input(i, rng.next());
      for (std::size_t i = 0; i < nl.num_dffs(); ++i)
        ws.set_state(i, rng.next());
      ws.eval();
    });
  }

  // Ternary kernel: same sweep shape over three-valued stimuli.
  {
    sim::TernarySim ts(eg);
    auto draw = [&] {
      const auto r = rng.below(3);
      return r == 0 ? sim::Trit::Zero : r == 1 ? sim::Trit::One : sim::Trit::X;
    };
    word.trit_evals_per_sec = measure(target_seconds, double(sched), [&] {
      for (std::size_t i = 0; i < nl.num_inputs(); ++i) ts.set_input(i, draw());
      for (std::size_t i = 0; i < nl.num_dffs(); ++i) ts.set_state(i, draw());
      ts.eval();
    });
  }

  // Diff fault sim: per-fault queries against one committed stimulus.
  {
    fault::DiffSim ds(eg);
    for (std::size_t i = 0; i < nl.num_inputs(); ++i)
      ds.good().set_input(i, rng.next());
    for (std::size_t i = 0; i < nl.num_dffs(); ++i)
      ds.good().set_state(i, rng.next());
    ds.commit_good();
    const auto faults = fault::full_fault_universe(nl);
    volatile Word sink = 0;
    word.diff_faults_per_sec =
        measure(target_seconds, double(faults.size()), [&] {
          Word acc = 0;
          for (const auto& f : faults) acc ^= ds.simulate(f).any();
          sink = sink ^ acc;
        });
  }
  rows.push_back(word);

  // Block kernel, once per available dispatch mode: same sweep, 512 lanes.
  for (sim::SimdMode mode :
       {sim::SimdMode::Scalar, sim::SimdMode::Avx2, sim::SimdMode::Avx512}) {
    if (!sim::simd_available(mode)) continue;
    KernelRow row;
    row.circuit = profile.name;
    row.dispatch = std::string("block-").append(sim::to_string(mode));
    row.lanes = sim::kBlockLanes;
    row.gates = nl.num_gates();
    row.sched = sched;
    sim::BlockSim bs(eg, mode);
    row.gate_evals_per_sec = measure(target_seconds, double(sched), [&] {
      for (std::size_t i = 0; i < nl.num_inputs(); ++i)
        for (std::size_t k = 0; k < sim::kBlockWords; ++k)
          bs.set_input_word(i, k, rng.next());
      for (std::size_t i = 0; i < nl.num_dffs(); ++i)
        for (std::size_t k = 0; k < sim::kBlockWords; ++k)
          bs.set_state_word(i, k, rng.next());
      bs.eval();
    });
    rows.push_back(row);
  }
}

std::string write_json(const std::vector<KernelRow>& rows) {
  const char* env = std::getenv("VCOMP_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_simkernel.json";
  std::ofstream out(path);
  if (!out.good()) return {};
  out << "{\n"
      << "  \"bench\": \"sim_kernel\",\n"
      << "  \"threads\": " << benchutil::threads_used() << ",\n"
      << "  \"quick\": " << (benchutil::quick_mode() ? "true" : "false")
      << ",\n"
      << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    out << "    {\"circuit\": \"" << r.circuit << "\", \"dispatch\": \""
        << r.dispatch << "\", \"lanes\": " << r.lanes
        << ", \"gates\": " << r.gates << ", \"sched\": " << r.sched
        << ", \"gate_evals_per_sec\": " << r.gate_evals_per_sec
        << ", \"lane_gate_evals_per_sec\": "
        << r.gate_evals_per_sec * double(r.lanes);
    if (r.compile_seconds >= 0)
      out << ", \"compile_seconds\": " << r.compile_seconds;
    if (r.trit_evals_per_sec >= 0)
      out << ", \"trit_evals_per_sec\": " << r.trit_evals_per_sec;
    if (r.diff_faults_per_sec >= 0)
      out << ", \"diff_faults_per_sec\": " << r.diff_faults_per_sec;
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return path;
}

}  // namespace

int main() {
  const bool quick = benchutil::quick_mode();
  const double target = quick ? 0.05 : 0.25;

  std::vector<std::string> names = {"s444", "s526", "s1423"};
  if (!quick) {
    names.push_back("s5378");
    names.push_back("s13207");
  }

  std::vector<KernelRow> rows;
  for (const auto& name : names)
    bench_circuit(netgen::profile(name), target, rows);

  std::printf("%-10s %-14s %6s %10s %14s %14s\n", "circuit", "dispatch",
              "lanes", "sched", "Mgate-ev/s", "Glane-ev/s");
  for (const KernelRow& r : rows)
    std::printf("%-10s %-14s %6zu %10zu %14.1f %14.2f\n", r.circuit.c_str(),
                r.dispatch.c_str(), r.lanes, r.sched,
                r.gate_evals_per_sec / 1e6,
                r.gate_evals_per_sec * double(r.lanes) / 1e9);

  const std::string path = write_json(rows);
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
