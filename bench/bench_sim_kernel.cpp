// Evaluation-kernel microbenchmark: raw throughput of the compiled
// evaluation core (EvalGraph + fused CSR kernels) that every simulator in
// the flow runs on.
//
// For a spread of circuit profiles it measures:
//  * word_evals_per_sec — WordSim::eval gate evaluations per second; each
//    gate eval covers 64 parallel patterns, so pattern-gate-evals are 64×;
//  * trit_evals_per_sec — TernarySim::eval gate evaluations per second;
//  * diff_faults_per_sec — DiffSim single-fault queries per second against
//    a committed 64-pattern stimulus (event-driven, so much more than one
//    full-circuit sweep per query is a *loss*);
//  * compile_seconds — one-off EvalGraph::compile cost.
//
// Results go to $VCOMP_BENCH_JSON (default BENCH_simkernel.json) so future
// PRs can diff eval throughput; see EXPERIMENTS.md for methodology.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "vcomp/fault/fault.hpp"
#include "vcomp/fault/fault_sim.hpp"
#include "vcomp/netgen/netgen.hpp"
#include "vcomp/sim/eval_graph.hpp"
#include "vcomp/sim/ternary_sim.hpp"
#include "vcomp/sim/word_sim.hpp"
#include "vcomp/util/rng.hpp"

namespace {

using namespace vcomp;
using benchutil::Stopwatch;
using sim::Word;

struct KernelRow {
  std::string circuit;
  std::size_t gates = 0;
  std::size_t sched = 0;
  double compile_seconds = 0;
  double word_evals_per_sec = 0;
  double trit_evals_per_sec = 0;
  double diff_faults_per_sec = 0;
};

/// Repeats \p body (one "round" = \p per_round units) until the target
/// wall-time is hit; returns units per second.
template <typename Body>
double measure(double target_seconds, double per_round, Body&& body) {
  // Warm-up round: touches every array once before the clock starts.
  body();
  Stopwatch sw;
  std::size_t rounds = 0;
  do {
    body();
    ++rounds;
  } while (sw.seconds() < target_seconds);
  return double(rounds) * per_round / sw.seconds();
}

KernelRow bench_circuit(const netgen::CircuitProfile& profile,
                        double target_seconds) {
  const netlist::Netlist nl = netgen::generate(profile);
  KernelRow row;
  row.circuit = profile.name;
  row.gates = nl.num_gates();

  Stopwatch compile_sw;
  const auto eg = sim::EvalGraph::compile(nl);
  row.compile_seconds = compile_sw.seconds();
  row.sched = eg->schedule().size();

  Rng rng(7);

  // Word kernel: full combinational sweeps over fresh random stimuli.
  {
    sim::WordSim ws(eg);
    row.word_evals_per_sec =
        measure(target_seconds, double(row.sched), [&] {
          for (std::size_t i = 0; i < nl.num_inputs(); ++i)
            ws.set_input(i, rng.next());
          for (std::size_t i = 0; i < nl.num_dffs(); ++i)
            ws.set_state(i, rng.next());
          ws.eval();
        });
  }

  // Ternary kernel: same sweep shape over three-valued stimuli.
  {
    sim::TernarySim ts(eg);
    auto draw = [&] {
      const auto r = rng.below(3);
      return r == 0 ? sim::Trit::Zero : r == 1 ? sim::Trit::One : sim::Trit::X;
    };
    row.trit_evals_per_sec =
        measure(target_seconds, double(row.sched), [&] {
          for (std::size_t i = 0; i < nl.num_inputs(); ++i)
            ts.set_input(i, draw());
          for (std::size_t i = 0; i < nl.num_dffs(); ++i)
            ts.set_state(i, draw());
          ts.eval();
        });
  }

  // Diff fault sim: per-fault queries against one committed stimulus.
  {
    fault::DiffSim ds(eg);
    for (std::size_t i = 0; i < nl.num_inputs(); ++i)
      ds.good().set_input(i, rng.next());
    for (std::size_t i = 0; i < nl.num_dffs(); ++i)
      ds.good().set_state(i, rng.next());
    ds.commit_good();
    const auto faults = fault::full_fault_universe(nl);
    volatile Word sink = 0;
    row.diff_faults_per_sec =
        measure(target_seconds, double(faults.size()), [&] {
          Word acc = 0;
          for (const auto& f : faults) acc ^= ds.simulate(f).any();
          sink = sink ^ acc;
        });
  }
  return row;
}

std::string write_json(const std::vector<KernelRow>& rows) {
  const char* env = std::getenv("VCOMP_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_simkernel.json";
  std::ofstream out(path);
  if (!out.good()) return {};
  out << "{\n"
      << "  \"bench\": \"sim_kernel\",\n"
      << "  \"threads\": " << benchutil::threads_used() << ",\n"
      << "  \"quick\": " << (benchutil::quick_mode() ? "true" : "false")
      << ",\n"
      << "  \"circuits\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    out << "    {\"circuit\": \"" << r.circuit << "\", \"gates\": " << r.gates
        << ", \"sched\": " << r.sched
        << ", \"compile_seconds\": " << r.compile_seconds
        << ", \"word_evals_per_sec\": " << r.word_evals_per_sec
        << ", \"trit_evals_per_sec\": " << r.trit_evals_per_sec
        << ", \"diff_faults_per_sec\": " << r.diff_faults_per_sec << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return path;
}

}  // namespace

int main() {
  const bool quick = benchutil::quick_mode();
  const double target = quick ? 0.05 : 0.25;

  std::vector<std::string> names = {"s444", "s526", "s1423"};
  if (!quick) {
    names.push_back("s5378");
    names.push_back("s13207");
  }

  std::vector<KernelRow> rows;
  std::printf("%-10s %10s %10s %14s %14s %14s\n", "circuit", "gates", "sched",
              "Mword-ev/s", "Mtrit-ev/s", "kfaults/s");
  for (const auto& name : names) {
    rows.push_back(bench_circuit(netgen::profile(name), target));
    const KernelRow& r = rows.back();
    std::printf("%-10s %10zu %10zu %14.1f %14.1f %14.1f\n", r.circuit.c_str(),
                r.gates, r.sched, r.word_evals_per_sec / 1e6,
                r.trit_evals_per_sec / 1e6, r.diff_faults_per_sec / 1e3);
  }

  const std::string path = write_json(rows);
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
