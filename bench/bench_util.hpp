#pragma once

/// Shared plumbing for the table-reproduction benchmark binaries: paper
/// reference values (for side-by-side printing), environment knobs, and a
/// tiny stopwatch.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "vcomp/core/experiment.hpp"
#include "vcomp/report/table.hpp"

namespace vcomp::benchutil {

/// VCOMP_QUICK=1 trims each table to its smaller circuits (CI-friendly).
inline bool quick_mode() {
  const char* v = std::getenv("VCOMP_QUICK");
  return v != nullptr && v[0] == '1';
}

/// One paper reference pair (m, t); negative = not reported.
struct PaperRef {
  double m = -1;
  double t = -1;
};

inline std::string ref_str(double v) {
  if (v < 0) return "-";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Averages a column of ratios, paper-style ("Ave" row).
class RatioAverager {
 public:
  void add(double v) {
    sum_ += v;
    ++n_;
  }
  std::string str() const {
    return n_ == 0 ? "-" : report::Table::ratio(sum_ / double(n_));
  }

 private:
  double sum_ = 0;
  std::size_t n_ = 0;
};

}  // namespace vcomp::benchutil
