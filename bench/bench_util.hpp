#pragma once

/// Shared plumbing for the table-reproduction benchmark binaries: paper
/// reference values (for side-by-side printing), environment knobs, and a
/// tiny stopwatch.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "vcomp/core/experiment.hpp"
#include "vcomp/obs/metrics.hpp"
#include "vcomp/report/table.hpp"
#include "vcomp/util/parallel.hpp"

namespace vcomp::benchutil {

/// VCOMP_QUICK=1 trims each table to its smaller circuits (CI-friendly).
inline bool quick_mode() {
  const char* v = std::getenv("VCOMP_QUICK");
  return v != nullptr && v[0] == '1';
}

/// Threads the process pool runs on (VCOMP_THREADS; reported in the JSON).
inline std::size_t threads_used() { return util::parallelism(); }

/// VCOMP_CIRCUITS=s5378,s9234 restricts a table bench to the named
/// profiles (empty/unset = all).  Filtering only selects which circuits
/// run; per-circuit results are unchanged, so single-circuit before/after
/// profiles stay comparable with full-table runs.
inline std::vector<netgen::CircuitProfile> filter_circuits(
    std::vector<netgen::CircuitProfile> profiles) {
  const char* env = std::getenv("VCOMP_CIRCUITS");
  if (env == nullptr || env[0] == '\0') return profiles;
  std::vector<std::string> wanted;
  for (const char* p = env; *p != '\0';) {
    const char* e = p;
    while (*e != '\0' && *e != ',') ++e;
    if (e != p) wanted.emplace_back(p, e);
    p = *e == ',' ? e + 1 : e;
  }
  std::vector<netgen::CircuitProfile> out;
  for (auto& pr : profiles)
    for (const auto& w : wanted)
      if (pr.name == w) {
        out.push_back(std::move(pr));
        break;
      }
  return out;
}

/// Circuit selection for a table bench: an explicit VCOMP_CIRCUITS list
/// wins over quick-mode trimming (so CI can pin a specific circuit even
/// under VCOMP_QUICK=1); otherwise quick mode keeps the first
/// `quick_take` profiles.
inline std::vector<netgen::CircuitProfile> select_circuits(
    std::vector<netgen::CircuitProfile> profiles, std::size_t quick_take) {
  const char* env = std::getenv("VCOMP_CIRCUITS");
  if (env != nullptr && env[0] != '\0')
    return filter_circuits(std::move(profiles));
  if (quick_mode() && profiles.size() > quick_take)
    profiles.resize(quick_take);
  return profiles;
}

/// VCOMP_CHAINS=1,2,4 (the default) selects the scan-fabric chain counts a
/// table bench sweeps.  The 1-chain rows keep their historical config
/// labels, so their JSON records stay byte-comparable with pre-fabric
/// baselines; c>1 rows are labelled with an "@c<N>" suffix.
inline std::vector<std::size_t> chain_counts() {
  const char* env = std::getenv("VCOMP_CHAINS");
  const std::string spec = env != nullptr && env[0] != '\0' ? env : "1,2,4";
  std::vector<std::size_t> out;
  for (std::size_t p = 0; p < spec.size();) {
    std::size_t e = spec.find(',', p);
    if (e == std::string::npos) e = spec.size();
    if (e > p) {
      const std::size_t n = std::stoul(spec.substr(p, e - p));
      if (n > 0) out.push_back(n);
    }
    p = e + 1;
  }
  if (out.empty()) out.push_back(1);
  return out;
}

/// One paper reference pair (m, t); negative = not reported.
struct PaperRef {
  double m = -1;
  double t = -1;
};

inline std::string ref_str(double v) {
  if (v < 0) return "-";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Averages a column of ratios, paper-style ("Ave" row).
class RatioAverager {
 public:
  void add(double v) {
    sum_ += v;
    ++n_;
  }
  std::string str() const {
    return n_ == 0 ? "-" : report::Table::ratio(sum_ / double(n_));
  }

 private:
  double sum_ = 0;
  std::size_t n_ = 0;
};

/// One stitching run plus the wall time it took (measured inside the
/// parallel task, so per-config timings stay meaningful under run_many).
struct TimedResult {
  core::StitchResult result;
  double seconds = 0;
};

/// Runs every configuration of a sweep concurrently, timing each one.
/// Results are positionally identical to serial lab.run() calls.
inline std::vector<TimedResult> run_timed(
    const core::CircuitLab& lab,
    const std::vector<core::StitchOptions>& options) {
  return util::parallel_map(options.size(), [&](std::size_t i) {
    Stopwatch sw;
    TimedResult tr;
    tr.result = lab.run(options[i]);
    tr.seconds = sw.seconds();
    return tr;
  });
}

/// Machine-readable per-config records for the table benches, written as
/// JSON so future PRs have a perf trajectory to diff against.  Destination:
/// $VCOMP_BENCH_JSON, defaulting to BENCH_stitch.json in the working
/// directory (each bench binary overwrites it with its own run).
class BenchJson {
 public:
  explicit BenchJson(std::string bench,
                     std::string default_path = "BENCH_stitch.json")
      : bench_(std::move(bench)), default_path_(std::move(default_path)) {}

  void add(const std::string& circuit, const std::string& config,
           const TimedResult& tr) {
    // Run-local work counters (no wall-clock fields): byte-identical across
    // thread counts, so tools/check_bench.py gates them exactly.
    add(circuit, config, tr, tr.result.profile.counters_only());
  }

  /// Full-control overload: \p counters replaces the profile counters (a
  /// scoped obs window that also covers pre-run search work, say) and
  /// \p extras appends named numeric fields to the row.  Extra fields ride
  /// outside check_bench.py's gated set unless named like a time/rate
  /// field, so reference values (paper numbers) are safe here.
  void add(const std::string& circuit, const std::string& config,
           const TimedResult& tr, obs::CounterSet counters,
           std::vector<std::pair<std::string, double>> extras = {}) {
    Row r;
    r.circuit = circuit;
    r.config = config;
    r.seconds = tr.seconds;
    r.m = tr.result.memory_ratio;
    r.t = tr.result.time_ratio;
    r.tv = tr.result.vectors_applied;
    r.ex = tr.result.extra_full_vectors;
    r.counters = std::move(counters);
    r.extras = std::move(extras);
    rows_.push_back(std::move(r));
  }

  /// Writes the collected records; returns the path (empty on failure).
  std::string write() const {
    const char* env = std::getenv("VCOMP_BENCH_JSON");
    const std::string path = env != nullptr ? env : default_path_;
    std::ofstream out(path);
    if (!out.good()) return {};
    out << "{\n"
        << "  \"bench\": \"" << bench_ << "\",\n"
        << "  \"threads\": " << threads_used() << ",\n"
        << "  \"quick\": " << (quick_mode() ? "true" : "false") << ",\n"
        << "  \"total_seconds\": " << total_.seconds() << ",\n"
        << "  \"configs\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      out << "    {\"circuit\": \"" << r.circuit << "\", \"config\": \""
          << r.config << "\", \"seconds\": " << r.seconds
          << ", \"m\": " << r.m << ", \"t\": " << r.t << ", \"tv\": " << r.tv
          << ", \"ex\": " << r.ex;
      for (const auto& [name, value] : r.extras)
        out << ", \"" << name << "\": " << value;
      out << ", \"counters\": {";
      for (std::size_t c = 0; c < r.counters.values.size(); ++c)
        out << (c > 0 ? ", " : "") << "\"" << r.counters.values[c].first
            << "\": " << r.counters.values[c].second;
      out << "}}" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return path;
  }

 private:
  struct Row {
    std::string circuit, config;
    double seconds = 0, m = 0, t = 0;
    std::size_t tv = 0, ex = 0;
    obs::CounterSet counters;
    std::vector<std::pair<std::string, double>> extras;
  };
  std::string bench_;
  std::string default_path_;
  Stopwatch total_;
  std::vector<Row> rows_;
};

}  // namespace vcomp::benchutil
