// Table 3: hidden-fault observability schemes — NXOR (plain), VXOR
// (vertical XOR capture, Figure 3) and HXOR (horizontal XOR scan-out,
// Figure 4) — under variable shift and most-faults selection.
//
// Env: VCOMP_QUICK=1 restricts to the four smallest circuits.

#include <cstdio>
#include <map>

#include "bench_util.hpp"

using namespace vcomp;
using benchutil::PaperRef;

namespace {

struct PaperRow {
  PaperRef nxor, vxor, hxor;
};

// Table 3 of the paper.
const std::map<std::string, PaperRow> kPaper = {
    {"s444", {{0.88, 0.65}, {0.68, 0.47}, {0.89, 0.65}}},
    {"s526", {{0.74, 0.57}, {0.77, 0.62}, {0.66, 0.49}}},
    {"s641", {{0.89, 0.33}, {0.73, 0.23}, {0.86, 0.32}}},
    {"s953", {{0.59, 0.25}, {0.59, 0.25}, {0.52, 0.13}}},
    {"s1196", {{0.59, 0.22}, {0.49, 0.10}, {0.55, 0.17}}},
    {"s1423", {{0.72, 0.53}, {0.75, 0.52}, {0.68, 0.48}}},
    {"s5378", {{0.76, 0.57}, {0.60, 0.49}, {0.65, 0.51}}},
    {"s9234", {{0.75, 0.68}, {0.67, 0.63}, {0.71, 0.65}}},
};

}  // namespace

int main() {
  std::printf("=== Table 3: hidden fault observability (NXOR / VXOR / "
              "HXOR) ===\n\n");

  auto profiles = netgen::table234_profiles();
  profiles = benchutil::select_circuits(std::move(profiles), 4);

  report::Table table({"circ", "scheme", "TV", "ex", "m", "t", "paper m",
                       "paper t"});
  benchutil::RatioAverager avg[3][2];
  benchutil::BenchJson json("table3");

  const auto labs = core::make_labs(profiles);  // parallel baselines
  for (const auto& lab_ptr : labs) {
    const auto& lab = *lab_ptr;
    benchutil::Stopwatch sw;
    const auto& paper = kPaper.at(lab.name());

    struct Cfg {
      const char* name;
      scan::CaptureMode cap;
      std::size_t taps;
      PaperRef ref;
    };
    const Cfg cfgs[] = {
        {"NXOR", scan::CaptureMode::Normal, 0, paper.nxor},
        {"VXOR", scan::CaptureMode::VXor, 0, paper.vxor},
        {"HXOR", scan::CaptureMode::Normal, 4, paper.hxor},
    };
    std::vector<core::StitchOptions> sweep(3);
    for (std::size_t k = 0; k < 3; ++k) {
      sweep[k].capture = cfgs[k].cap;
      sweep[k].hxor_taps = cfgs[k].taps;
    }
    const auto timed = benchutil::run_timed(lab, sweep);
    for (std::size_t k = 0; k < 3; ++k) {
      const auto& r = timed[k].result;
      avg[k][0].add(r.memory_ratio);
      avg[k][1].add(r.time_ratio);
      json.add(lab.name(), cfgs[k].name, timed[k]);
      table.add_row({lab.name(), cfgs[k].name,
                     report::Table::num(r.vectors_applied),
                     report::Table::num(r.extra_full_vectors),
                     report::Table::ratio(r.memory_ratio),
                     report::Table::ratio(r.time_ratio),
                     benchutil::ref_str(cfgs[k].ref.m),
                     benchutil::ref_str(cfgs[k].ref.t)});
    }
    std::fprintf(stderr, "[table3] %s done in %.1fs\n", lab.name().c_str(),
                 sw.seconds());
  }
  table.add_row({"Ave", "NXOR", "", "", avg[0][0].str(), avg[0][1].str(),
                 "0.74", "0.48"});
  table.add_row({"Ave", "VXOR", "", "", avg[1][0].str(), avg[1][1].str(),
                 "0.66", "0.41"});
  table.add_row({"Ave", "HXOR", "", "", avg[2][0].str(), avg[2][1].str(),
                 "0.69", "0.43"});
  std::printf("%s", table.to_string().c_str());
  json.write();
  return 0;
}
