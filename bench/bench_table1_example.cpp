// Figure 1 / Table 1: the paper's worked example.
//
// Replays the four stitched test vectors on the reconstructed three-gate
// circuit and regenerates Table 1 — every fault's (test vector, response)
// trajectory, with hidden faults and catch events — plus the headline
// numbers of Section 3: 11 vs 15 shift cycles and 17 vs 24 tester bits.

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "vcomp/core/tracker.hpp"
#include "vcomp/fault/fault_parallel_sim.hpp"
#include "vcomp/netgen/example_circuit.hpp"

using namespace vcomp;

namespace {

std::string bits_str(const std::vector<std::uint8_t>& b) {
  std::string s;
  for (auto x : b) s += char('0' + x);
  return s;
}

}  // namespace

int main() {
  auto nl = netgen::example_circuit();
  auto cf = fault::collapsed_fault_list(nl);
  const auto tvs = netgen::example_test_vectors();

  std::printf("=== Table 1: fault behaviour through four stitched cycles "
              "===\n\n");

  // Per-fault per-cycle (TV, RP) rows, tracked with one LaneSim machine per
  // fault — exactly the bookkeeping the paper tabulates.
  core::StitchTracker tracker(nl, cf, scan::CaptureMode::Normal,
                              scan::ScanOutModel::direct(3));
  // Private replica per fault for printing TV_f / RP_f like the paper.
  std::map<std::size_t, scan::ChainState> machines;
  for (std::size_t i = 0; i < cf.size(); ++i)
    machines.emplace(i, scan::ChainState(3));

  report::Table table({"fault", "cyc1 TV", "RP", "cyc2 TV", "RP", "cyc3 TV",
                       "RP", "cyc4 TV", "RP", "caught"});
  std::vector<std::vector<std::string>> cells(
      cf.size(), std::vector<std::string>(9, ""));

  fault::LaneSim lanes(nl);
  scan::ChainState good_chain(3);
  std::vector<std::size_t> caught_at(cf.size(), 0);

  for (std::size_t c = 0; c < tvs.size(); ++c) {
    atpg::TestVector v;
    v.ppi = tvs[c];
    // Advance the shared tracker (authoritative catch bookkeeping).
    if (c == 0)
      tracker.apply_first(v);
    else
      tracker.apply_stitched(v, 2);

    // Advance the printing replicas.
    const std::vector<std::uint8_t> in_bits =
        c == 0 ? std::vector<std::uint8_t>{}
               : std::vector<std::uint8_t>{tvs[c][1], tvs[c][0]};
    if (c == 0)
      good_chain.load(tvs[c]);
    else
      good_chain.shift(in_bits, scan::ScanOutModel::direct(3));

    for (std::size_t i = 0; i < cf.size(); ++i) {
      if (caught_at[i] != 0) continue;
      auto& m = machines.at(i);
      if (c == 0)
        m.load(tvs[c]);
      else
        m.shift(in_bits, scan::ScanOutModel::direct(3));
      const std::string tv_f = bits_str(m.bits());

      lanes.clear();
      const int lane = lanes.add_lane();
      for (std::size_t p = 0; p < 3; ++p)
        lanes.set_state(lane, p, m.at(p) != 0);
      lanes.inject(lane, cf[i]);
      lanes.eval();
      std::vector<std::uint8_t> rp(3);
      for (std::size_t p = 0; p < 3; ++p)
        rp[p] = lanes.next_state(lane, p) ? 1 : 0;
      m.capture(rp, scan::CaptureMode::Normal);

      cells[i][1 + 2 * c - 1] = tv_f;
      cells[i][1 + 2 * c] = bits_str(rp);
      if (tracker.sets().state(i) == core::FaultState::Caught)
        caught_at[i] = tracker.sets().catch_cycle(i);
    }
    // Good machine capture for the next cycle's replica shifts.
    lanes.clear();
    const int lane = lanes.add_lane();
    for (std::size_t p = 0; p < 3; ++p)
      lanes.set_state(lane, p, good_chain.at(p) != 0);
    lanes.eval();
    std::vector<std::uint8_t> rp(3);
    for (std::size_t p = 0; p < 3; ++p)
      rp[p] = lanes.next_state(lane, p) ? 1 : 0;
    good_chain.capture(rp, scan::CaptureMode::Normal);
  }
  tracker.terminal_observe(2);

  for (std::size_t i = 0; i < cf.size(); ++i) {
    std::vector<std::string> row{fault_name(nl, cf[i])};
    for (int k = 0; k < 8; ++k) row.push_back(cells[i][k]);
    const auto st = tracker.sets().state(i);
    row.push_back(st == core::FaultState::Caught
                      ? "cycle " + std::to_string(tracker.sets()
                                                      .catch_cycle(i))
                      : "never (redundant)");
    table.add_row(row);
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("caught %zu of 17 detectable faults (E-F/1 redundant)\n\n",
              tracker.sets().num_caught());

  // Section 3 headline numbers.
  scan::CostMeter meter(0, 0, 3);
  meter.initial_load();
  for (int i = 0; i < 3; ++i) meter.stitched_cycle(2);
  meter.final_observe(2);
  const auto full = scan::CostMeter::full_scan(0, 0, 3, 4);
  std::printf("=== Section 3 cost comparison ===\n");
  std::printf("full shifting : %llu cycles, %llu bits\n",
              (unsigned long long)full.shift_cycles,
              (unsigned long long)full.memory_bits());
  std::printf("stitched      : %llu cycles, %llu bits   (paper: 11 / 17)\n",
              (unsigned long long)meter.cost().shift_cycles,
              (unsigned long long)meter.cost().memory_bits());
  return 0;
}
