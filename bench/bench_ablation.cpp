// Ablation bench (not a paper table): the engineering choices this
// implementation adds on top of the paper's Figure-2 algorithm, each
// toggled in isolation on two benchmark circuits:
//
//  * variable-shift decay        — shift size halves back after a success
//    streak (the paper's "variable" idea made bidirectional);
//  * break-even guard            — stop stitching when recent catches cost
//    more tester data than traditional vectors would;
//  * bridge cycles               — churn the retained state when
//    generation stalls instead of giving up immediately;
//  * greedy width (cubes×fills)  — candidate pool of the MostFaults pick.
//
// Env: VCOMP_QUICK=1 restricts to the first circuit.

#include <cstdio>

#include "bench_util.hpp"

using namespace vcomp;

int main() {
  std::printf("=== Ablation: engine design choices (variable shift, "
              "most-faults) ===\n\n");

  std::vector<netgen::CircuitProfile> profiles = {netgen::profile("s526"),
                                                  netgen::profile("s953")};
  profiles = benchutil::select_circuits(std::move(profiles), 1);

  report::Table table({"circ", "variant", "TV", "ex", "m", "t"});

  for (const auto& prof : profiles) {
    benchutil::Stopwatch sw;
    core::CircuitLab lab(prof);

    struct Variant {
      const char* name;
      void (*tweak)(core::StitchOptions&);
    };
    const Variant variants[] = {
        {"full engine", [](core::StitchOptions&) {}},
        {"no decay",
         [](core::StitchOptions& o) { o.variable_decay_after = 0; }},
        {"no break-even guard",
         [](core::StitchOptions& o) { o.marginal_window = 0; }},
        {"no bridge cycles",
         [](core::StitchOptions& o) { o.max_bridge_cycles = 0; }},
        {"narrow greedy (1x1)",
         [](core::StitchOptions& o) {
           o.most_faults_cubes = 1;
           o.fills_per_cube = 1;
         }},
        {"wide greedy (10x6)",
         [](core::StitchOptions& o) {
           o.most_faults_cubes = 10;
           o.fills_per_cube = 6;
         }},
    };
    for (const auto& v : variants) {
      core::StitchOptions opts;
      v.tweak(opts);
      const auto r = lab.run(opts);
      table.add_row({prof.name, v.name,
                     report::Table::num(r.vectors_applied),
                     report::Table::num(r.extra_full_vectors),
                     report::Table::ratio(r.memory_ratio),
                     report::Table::ratio(r.time_ratio)});
    }
    std::fprintf(stderr, "[ablation] %s done in %.1fs\n", prof.name.c_str(),
                 sw.seconds());
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
