// Table 2: varying the size and type of shifting.
//
// For each benchmark profile: fixed shifts at the 3/8, 5/8 and 7/8 info
// points (unattainable points print '/', exactly as in the paper) and the
// variable-shift policy.  Columns mirror the paper: aTV (baseline vector
// count), shift (s/L), TV (stitched vectors), ex (appended traditional
// vectors), m (memory ratio), t (time ratio).
//
// Paper reference values are printed alongside for shape comparison; the
// substrate here is a synthetic profile-matched circuit, so absolute
// numbers differ while trends (5/8 best among fixed; variable best overall;
// tiny shifts explode `ex`) should hold.
//
// On top of the paper's single-chain sweep, every info point is re-run on
// multi-chain scan fabrics (VCOMP_CHAINS, default "1,2,4"; VCOMP_PARTITION
// picks the DFF→chain policy).  Multi-chain rows carry an "@c<N>" config
// suffix in the table and the JSON records; the 1-chain rows keep their
// historical labels so baselines stay byte-comparable.
//
// Env: VCOMP_QUICK=1 restricts to the four smallest circuits.

#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "vcomp/scan/fabric.hpp"

using namespace vcomp;
using benchutil::PaperRef;

namespace {

struct PaperRow {
  PaperRef p38, p58, p78, var;
};

// Table 2 of the paper (m, t per info point; -1 = '/').
const std::map<std::string, PaperRow> kPaper = {
    {"s444", {{0.88, 0.82}, {0.64, 0.57}, {0.88, 0.86}, {0.73, 0.53}}},
    {"s526", {{0.88, 0.82}, {0.66, 0.58}, {0.85, 0.83}, {0.72, 0.53}}},
    {"s641", {{-1, -1}, {0.80, 0.46}, {0.62, 0.49}, {0.68, 0.24}}},
    {"s953", {{-1, -1}, {0.63, 0.38}, {0.88, 0.79}, {0.52, 0.14}}},
    {"s1196", {{-1, -1}, {0.63, 0.34}, {0.89, 0.79}, {0.49, 0.10}}},
    {"s1423", {{0.76, 0.71}, {0.82, 0.78}, {0.73, 0.72}, {0.63, 0.43}}},
    {"s5378", {{0.92, 0.89}, {0.83, 0.79}, {0.77, 0.75}, {0.57, 0.45}}},
    {"s9234", {{0.96, 0.95}, {0.84, 0.82}, {0.61, 0.60}, {0.68, 0.63}}},
};

}  // namespace

int main() {
  std::printf("=== Table 2: varying the size and type of shifting ===\n");
  std::printf("(measured on synthetic profile-matched circuits; 'paper' "
              "columns quote DATE'03 Table 2)\n\n");

  auto profiles = netgen::table234_profiles();
  profiles = benchutil::select_circuits(std::move(profiles), 4);
  const auto chain_list = benchutil::chain_counts();
  const scan::PartitionPolicy partition = scan::partition_from_env();

  report::Table table({"circ", "aTV", "info", "shift", "TV", "ex", "m", "t",
                       "paper m", "paper t"});
  benchutil::RatioAverager avg_m38, avg_t38, avg_m58, avg_t58, avg_m78,
      avg_t78, avg_mv, avg_tv;
  benchutil::BenchJson json("table2");

  // Baselines for all circuits, then every circuit's sweep, run on the
  // process pool (VCOMP_THREADS); results are identical to the serial
  // sweep for any thread count.
  benchutil::Stopwatch build_sw;
  const auto labs = core::make_labs(profiles);
  std::fprintf(stderr, "[table2] %zu baselines built in %.1fs (%zu threads)\n",
               labs.size(), build_sw.seconds(), benchutil::threads_used());

  for (const auto& lab_ptr : labs) {
    const auto& lab = *lab_ptr;
    benchutil::Stopwatch sw;
    const auto& paper = kPaper.at(lab.name());

    struct Point {
      const char* label;
      double ratio;  // 0 = variable
      PaperRef ref;
      benchutil::RatioAverager* am;
      benchutil::RatioAverager* at;
      bool attainable = false;
      std::string shift_desc = "/";
    };
    Point points[] = {
        {"3/8", 3.0 / 8, paper.p38, &avg_m38, &avg_t38},
        {"5/8", 5.0 / 8, paper.p58, &avg_m58, &avg_t58},
        {"7/8", 7.0 / 8, paper.p78, &avg_m78, &avg_t78},
        {"var", 0.0, paper.var, &avg_mv, &avg_tv},
    };

    // One sweep entry per (chain count, attainable info point); 1-chain
    // entries come first so their JSON rows keep the historical order.
    struct Run {
      Point* pt;
      std::size_t chains;
      std::size_t index;  // into `timed`
    };
    std::vector<core::StitchOptions> sweep;
    std::vector<Run> runs;
    for (std::size_t nc : chain_list) {
      if (nc > lab.netlist().num_dffs()) continue;
      for (auto& pt : points) {
        core::StitchOptions opts;
        opts.num_chains = nc;
        opts.partition = partition;
        if (pt.ratio > 0) {
          if (!core::apply_info_ratio(opts, lab.netlist(), pt.ratio))
            continue;
          pt.shift_desc = std::to_string(opts.fixed_shift) + "/" +
                          std::to_string(lab.netlist().num_dffs());
        } else {
          pt.shift_desc = "variable";
        }
        if (nc == 1) pt.attainable = true;
        runs.push_back({&pt, nc, sweep.size()});
        sweep.push_back(opts);
      }
    }
    const auto timed = benchutil::run_timed(lab, sweep);

    // 1-chain block first: paper-comparable rows in point order, '/' where
    // the info point is unattainable — exactly the historical layout.
    for (const auto& pt : points) {
      const Run* run = nullptr;
      for (const auto& rr : runs)
        if (rr.pt == &pt && rr.chains == 1) run = &rr;
      if (run == nullptr) {
        table.add_row({lab.name(), report::Table::num(lab.atv()), pt.label,
                       "/", "/", "/", "/", "/", benchutil::ref_str(pt.ref.m),
                       benchutil::ref_str(pt.ref.t)});
        continue;
      }
      const auto& tr = timed[run->index];
      const auto& r = tr.result;
      pt.am->add(r.memory_ratio);
      pt.at->add(r.time_ratio);
      json.add(lab.name(), pt.label, tr);
      table.add_row({lab.name(), report::Table::num(lab.atv()), pt.label,
                     pt.shift_desc, report::Table::num(r.vectors_applied),
                     report::Table::num(r.extra_full_vectors),
                     report::Table::ratio(r.memory_ratio),
                     report::Table::ratio(r.time_ratio),
                     benchutil::ref_str(pt.ref.m),
                     benchutil::ref_str(pt.ref.t)});
    }
    // Multi-chain rows ("@c<N>" config suffix; no paper counterpart).
    for (const auto& rr : runs) {
      if (rr.chains == 1) continue;
      const auto& tr = timed[rr.index];
      const auto& r = tr.result;
      const std::string label =
          std::string(rr.pt->label) + "@c" + std::to_string(rr.chains);
      json.add(lab.name(), label, tr);
      table.add_row({lab.name(), report::Table::num(lab.atv()), label,
                     rr.pt->shift_desc,
                     report::Table::num(r.vectors_applied),
                     report::Table::num(r.extra_full_vectors),
                     report::Table::ratio(r.memory_ratio),
                     report::Table::ratio(r.time_ratio), "-", "-"});
    }
    std::fprintf(stderr, "[table2] %s done in %.1fs\n", lab.name().c_str(),
                 sw.seconds());
  }

  table.add_row({"Ave", "", "3/8", "", "", "", avg_m38.str(), avg_t38.str(),
                 "0.88", "0.84"});
  table.add_row({"Ave", "", "5/8", "", "", "", avg_m58.str(), avg_t58.str(),
                 "0.73", "0.59"});
  table.add_row({"Ave", "", "7/8", "", "", "", avg_m78.str(), avg_t78.str(),
                 "0.78", "0.73"});
  table.add_row({"Ave", "", "var", "", "", "", avg_mv.str(), avg_tv.str(),
                 "0.63", "0.38"});
  std::printf("%s", table.to_string().c_str());
  const std::string json_path = json.write();
  if (!json_path.empty())
    std::fprintf(stderr, "[table2] per-config records written to %s\n",
                 json_path.c_str());
  return 0;
}
