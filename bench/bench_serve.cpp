// Serve daemon throughput benchmark.
//
// Measures what the vcomp_serve artifact registry buys: N identical jobs
// on the same circuit, submitted
//  * "cold"  — one fresh Server (fresh registry) per job, sequentially:
//              every job pays the full CircuitLab build (baseline ATPG,
//              graph compile, SCOAP, compact model), exactly like N
//              standalone vcomp_stitch invocations;
//  * "serve" — one Server, all N jobs concurrent: the first build is
//              shared, the other N-1 hit the content-addressed cache.
//
// On the 1-CPU CI container the speedup is pure cache sharing — the jobs
// cannot overlap compute — so the serve/cold ratio is the registry's
// figure of merit.  The canonical result row is recorded per workload and
// byte-compared by tools/check_bench.py: every job in every mode must
// produce the identical row (the serve determinism contract).
//
// Results go to $VCOMP_BENCH_JSON (default BENCH_serve.json).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "vcomp/serve/json.hpp"
#include "vcomp/serve/server.hpp"

namespace {

using namespace vcomp;
using benchutil::Stopwatch;

struct Workload {
  std::string circuit;
  std::string config_label;  // row identity key in the bench JSON
  std::string config_json;
};

struct ServeRow {
  std::string circuit, config;
  std::size_t n_jobs = 0;
  double cold_seconds = 0;
  double serve_seconds = 0;
  double speedup = 0;
  double serve_jobs_per_sec = 0;
  std::string row;  // canonical result row, identical across modes
};

/// Submits \p n copies of the workload to \p server and returns the result
/// rows (the "row" object of each result event), in completion order.
std::vector<std::string> run_batch(serve::Server& server, const Workload& w,
                                   std::size_t n) {
  std::vector<std::string> rows;
  const serve::Server::Sink sink = [&rows](const std::string& line) {
    const std::size_t pos = line.find("\"row\":");
    if (line.rfind("{\"event\":\"result\"", 0) == 0 &&
        pos != std::string::npos)
      rows.push_back(line.substr(pos + 6, line.size() - pos - 7));
  };
  for (std::size_t i = 0; i < n; ++i) {
    const std::string line = "{\"op\":\"submit\",\"id\":\"j" +
                             std::to_string(i) + "\",\"circuit\":\"" +
                             w.circuit + "\",\"config\":" + w.config_json +
                             "}";
    if (!server.handle_line(line, sink)) std::abort();
  }
  server.drain();
  return rows;
}

ServeRow bench_workload(const Workload& w, std::size_t n) {
  ServeRow row;
  row.circuit = w.circuit;
  row.config = w.config_label;
  row.n_jobs = n;

  // Cold: a fresh registry per job — every job rebuilds the artifacts.
  {
    Stopwatch sw;
    for (std::size_t i = 0; i < n; ++i) {
      serve::Server server(serve::ServeOptions{.max_active_jobs = 1});
      const auto rows = run_batch(server, w, 1);
      if (rows.size() != 1) std::abort();
      if (row.row.empty()) row.row = rows[0];
      if (rows[0] != row.row) std::abort();  // determinism violated
    }
    row.cold_seconds = sw.seconds();
  }

  // Serve: one registry, all jobs in flight — one build, n-1 cache hits.
  {
    serve::Server server(serve::ServeOptions{.max_active_jobs = n});
    Stopwatch sw;
    const auto rows = run_batch(server, w, n);
    row.serve_seconds = sw.seconds();
    if (rows.size() != n) std::abort();
    for (const std::string& r : rows)
      if (r != row.row) std::abort();  // concurrent != sequential
  }

  row.speedup = row.serve_seconds > 0
                    ? row.cold_seconds / row.serve_seconds
                    : 0;
  row.serve_jobs_per_sec =
      row.serve_seconds > 0 ? double(n) / row.serve_seconds : 0;
  return row;
}

}  // namespace

int main() {
  const std::size_t n = 4;
  const std::vector<Workload> workloads = {
      // Realistic single job: full stitched run, modest build share.
      {"gen:s444", "chains=2 seed=3", "{\"chains\":2,\"seed\":3}"},
      // Cache-dominated: capped stitched phase on a larger circuit, so
      // the artifact build dominates and sharing pays off directly.
      {"gen:s5378", "chains=4 seed=3 max_cycles=4",
       "{\"chains\":4,\"seed\":3,\"max_cycles\":4}"},
  };

  Stopwatch total;
  std::vector<ServeRow> rows;
  std::printf("serve throughput (%zu jobs per workload, %zu threads)\n", n,
              benchutil::threads_used());
  for (const Workload& w : workloads) {
    const ServeRow r = bench_workload(w, n);
    std::printf("  %-10s %-28s cold %6.2fs  serve %6.2fs  speedup %.2fx\n",
                r.circuit.c_str(), r.config.c_str(), r.cold_seconds,
                r.serve_seconds, r.speedup);
    rows.push_back(r);
  }

  const char* env = std::getenv("VCOMP_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_serve.json";
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"serve\",\n"
      << "  \"threads\": " << benchutil::threads_used() << ",\n"
      << "  \"quick\": " << (benchutil::quick_mode() ? "true" : "false")
      << ",\n"
      << "  \"total_seconds\": " << total.seconds() << ",\n"
      << "  \"jobs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ServeRow& r = rows[i];
    std::string esc;
    serve::append_json_string(esc, r.row);
    out << "    {\"circuit\": \"" << r.circuit << "\", \"config\": \""
        << r.config << "\", \"n_jobs\": " << r.n_jobs
        << ", \"cold_seconds\": " << r.cold_seconds
        << ", \"serve_seconds\": " << r.serve_seconds
        << ", \"speedup\": " << r.speedup
        << ", \"serve_jobs_per_sec\": " << r.serve_jobs_per_sec
        << ", \"row\": " << esc << "}" << (i + 1 < rows.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  std::printf("bench json written to %s\n", path.c_str());
  return 0;
}
