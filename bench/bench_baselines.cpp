// Extension bench (not a paper table): the stitching scheme head-to-head
// with the prior compression approaches of the paper's Section 2 —
// PSFS (Hamzaoglu & Patel '99), Virtual Scan Chains (Jas/Pouya/Touba '00)
// and serial-scan overlap reordering (Su & Hwang '93) — all normalized to
// the same full-shift aTV baseline, with the hardware each scheme needs.
//
// Env: VCOMP_QUICK=1 restricts to the two smallest circuits.

#include <cstdio>

#include "bench_util.hpp"
#include "vcomp/baselines/overlap.hpp"
#include "vcomp/baselines/psfs.hpp"
#include "vcomp/baselines/virtual_scan.hpp"

using namespace vcomp;

int main() {
  std::printf("=== Compression baselines vs test vector stitching ===\n");
  std::printf("(m/t vs full shifting; 'hw' = added DFT hardware)\n\n");

  std::vector<netgen::CircuitProfile> profiles = {
      netgen::profile("s444"), netgen::profile("s526"),
      netgen::profile("s953"), netgen::profile("s1423")};
  profiles = benchutil::select_circuits(std::move(profiles), 2);

  report::Table table({"circ", "scheme", "cheap", "serial", "m", "t", "hw"});

  for (const auto& prof : profiles) {
    benchutil::Stopwatch sw;
    core::CircuitLab lab(prof);

    // Ours: variable shift + most-faults greedy, no hardware.
    {
      core::StitchOptions opts;
      const auto r = lab.run(opts);
      table.add_row({prof.name, "stitching",
                     report::Table::num(r.vectors_applied),
                     report::Table::num(r.extra_full_vectors),
                     report::Table::ratio(r.memory_ratio),
                     report::Table::ratio(r.time_ratio), "none"});
    }
    {
      const auto r = baselines::run_psfs(lab.netlist(), lab.faults(),
                                         lab.baseline());
      table.add_row({prof.name, r.scheme,
                     report::Table::num(r.cheap_vectors),
                     report::Table::num(r.full_vectors),
                     report::Table::ratio(r.memory_ratio),
                     report::Table::ratio(r.time_ratio),
                     "k-pin broadcast/scan-out"});
    }
    {
      const auto r = baselines::run_virtual_scan(lab.netlist(), lab.faults(),
                                                 lab.baseline());
      table.add_row({prof.name, r.scheme,
                     report::Table::num(r.cheap_vectors),
                     report::Table::num(r.full_vectors),
                     report::Table::ratio(r.memory_ratio),
                     report::Table::ratio(r.time_ratio),
                     "LFSRs + MISR"});
    }
    {
      const auto r = baselines::run_overlap(lab.netlist(), lab.baseline());
      table.add_row({prof.name, r.scheme,
                     report::Table::num(r.cheap_vectors),
                     report::Table::num(r.full_vectors),
                     report::Table::ratio(r.memory_ratio),
                     report::Table::ratio(r.time_ratio),
                     "separate out-chain"});
    }
    std::fprintf(stderr, "[baselines] %s done in %.1fs\n",
                 prof.name.c_str(), sw.seconds());
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nNotes: PSFS responses stay fully observable but need one\n"
              "scan-out pin per partition; VSC compresses responses into a\n"
              "MISR signature (aliasing + diagnosis loss the stitching\n"
              "scheme avoids); overlap assumes separate input/output scan\n"
              "chains.  Stitching is the only scheme at zero hardware.\n");
  return 0;
}
