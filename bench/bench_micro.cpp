// Engineering micro-benchmarks (google-benchmark): throughput of the
// substrate engines the stitching flow leans on.  Not a paper table; used
// to keep the fault-simulation and ATPG cores honest.

#include <benchmark/benchmark.h>

#include "vcomp/atpg/podem.hpp"
#include "vcomp/fault/collapse.hpp"
#include "vcomp/fault/fault_parallel_sim.hpp"
#include "vcomp/fault/fault_sim.hpp"
#include "vcomp/netgen/netgen.hpp"
#include "vcomp/sim/word_sim.hpp"
#include "vcomp/tmeas/scoap.hpp"
#include "vcomp/util/rng.hpp"

using namespace vcomp;

namespace {

const netlist::Netlist& bench_netlist() {
  static const netlist::Netlist nl = netgen::generate("s1423");
  return nl;
}

const fault::CollapsedFaults& bench_faults() {
  static const fault::CollapsedFaults cf =
      fault::collapsed_fault_list(bench_netlist());
  return cf;
}

void BM_WordSimEval(benchmark::State& state) {
  const auto& nl = bench_netlist();
  sim::WordSim sim(nl);
  Rng rng(1);
  for (std::size_t i = 0; i < nl.num_inputs(); ++i)
    sim.set_input(i, rng.next());
  for (std::size_t i = 0; i < nl.num_dffs(); ++i)
    sim.set_state(i, rng.next());
  for (auto _ : state) {
    sim.eval();
    benchmark::DoNotOptimize(sim.output(0));
  }
  state.SetItemsProcessed(state.iterations() * 64);  // patterns per eval
}
BENCHMARK(BM_WordSimEval);

void BM_DiffSimFullFaultList(benchmark::State& state) {
  const auto& nl = bench_netlist();
  const auto& cf = bench_faults();
  fault::DiffSim sim(nl);
  Rng rng(2);
  for (std::size_t i = 0; i < nl.num_inputs(); ++i)
    sim.good().set_input(i, rng.next());
  for (std::size_t i = 0; i < nl.num_dffs(); ++i)
    sim.good().set_state(i, rng.next());
  sim.commit_good();
  for (auto _ : state) {
    sim::Word acc = 0;
    for (const auto& f : cf.faults()) acc |= sim.simulate(f).any();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * cf.size() * 64);
}
BENCHMARK(BM_DiffSimFullFaultList);

void BM_LaneSimBatch(benchmark::State& state) {
  const auto& nl = bench_netlist();
  const auto& cf = bench_faults();
  fault::LaneSim lanes(nl);
  Rng rng(3);
  for (auto _ : state) {
    lanes.clear();
    for (int k = 0; k < 64; ++k) {
      const int lane = lanes.add_lane();
      for (std::size_t i = 0; i < nl.num_inputs(); ++i)
        lanes.set_pi(lane, i, rng.bit());
      for (std::size_t i = 0; i < nl.num_dffs(); ++i)
        lanes.set_state(lane, i, rng.bit());
      lanes.inject(lane, cf[static_cast<std::size_t>(k) % cf.size()]);
    }
    lanes.eval();
    benchmark::DoNotOptimize(lanes.output_word(0));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_LaneSimBatch);

void BM_PodemEasyFaults(benchmark::State& state) {
  const auto& nl = bench_netlist();
  const auto& cf = bench_faults();
  tmeas::Scoap scoap(nl);
  atpg::Podem podem(nl, scoap);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto res = podem.generate(cf[i % cf.size()]);
    benchmark::DoNotOptimize(res.status);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PodemEasyFaults);

void BM_ScoapFullCircuit(benchmark::State& state) {
  const auto& nl = bench_netlist();
  for (auto _ : state) {
    tmeas::Scoap sc(nl);
    benchmark::DoNotOptimize(sc.co(0));
  }
}
BENCHMARK(BM_ScoapFullCircuit);

}  // namespace

BENCHMARK_MAIN();
