// Stitched-cycle tracker throughput benchmark.
//
// Drives a StitchTracker through a scripted random stitched walk (the same
// shape as tests/core/tracker_test.cpp, minus the assertions) and reports
// the tracker's own per-phase counters:
//  * classify_faults_per_sec — sharded uncaught-fault DiffSim queries/s;
//  * advance_lanes_per_sec   — 64-lane hidden-fault advance lanes/s;
//  * shift_seconds           — scan-shift + hidden-chain compare time;
//  * cycles, seconds         — walk length and total tracker wall time.
//
// The walk is ATPG-free, so these numbers isolate the tracker pipeline
// (the system's hottest loop) from PODEM and scoring.  Results go to
// $VCOMP_BENCH_JSON (default BENCH_tracker.json); see EXPERIMENTS.md.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "vcomp/atpg/test_set.hpp"
#include "vcomp/core/tracker.hpp"
#include "vcomp/fault/collapse.hpp"
#include "vcomp/netgen/netgen.hpp"
#include "vcomp/scan/scan_chain.hpp"
#include "vcomp/util/rng.hpp"

namespace {

using namespace vcomp;
using benchutil::Stopwatch;

struct TrackerRow {
  std::string circuit;
  std::size_t gates = 0;
  std::size_t chain = 0;
  std::size_t faults = 0;
  std::size_t cycles = 0;
  double seconds = 0;  // total tracker wall time over the walk
  double classify_faults_per_sec = 0;
  double advance_lanes_per_sec = 0;
  double shift_seconds = 0;
  obs::CounterSet counters;  // exact work counters, thread-invariant
};

TrackerRow bench_circuit(const netgen::CircuitProfile& profile,
                         std::size_t cycles) {
  const netlist::Netlist nl = netgen::generate(profile);
  const auto cf = fault::collapsed_fault_list(nl);
  const std::size_t L = nl.num_dffs();

  TrackerRow row;
  row.circuit = profile.name;
  row.gates = nl.num_gates();
  row.chain = L;
  row.faults = cf.size();
  row.cycles = cycles;

  core::StitchTracker tracker(nl, cf, scan::CaptureMode::Normal,
                              scan::ScanOutModel::direct(L));
  Rng rng(97);
  const scan::ScanChain map(nl);

  auto random_vector = [&](std::size_t s) {
    atpg::TestVector v;
    v.pi.resize(nl.num_inputs());
    for (auto& b : v.pi) b = rng.bit();
    v.ppi.resize(L);
    for (std::size_t p = 0; p < L; ++p) {
      const auto dff = map.dff_at(p);
      v.ppi[dff] = (s < L && p >= s)
                       ? tracker.chain().at(p - s)
                       : static_cast<std::uint8_t>(rng.bit());
    }
    return v;
  };

  Stopwatch sw;
  tracker.apply_first(random_vector(L));
  // Small shifts keep the hidden set populated (big shifts flush it), so
  // the advance phase stays busy for the whole walk.
  const std::size_t max_s = L < 8 ? L : L / 4;
  for (std::size_t c = 1; c < cycles; ++c) {
    const std::size_t s = 1 + rng.below(max_s);
    tracker.apply_stitched(random_vector(s), s);
  }
  row.seconds = sw.seconds();

  const core::TrackerProfile& p = tracker.profile();
  if (p.classify_seconds > 0)
    row.classify_faults_per_sec =
        double(p.faults_classified) / p.classify_seconds;
  if (p.advance_seconds > 0)
    row.advance_lanes_per_sec = double(p.hidden_advanced) / p.advance_seconds;
  row.shift_seconds = p.shift_seconds;
  row.counters = p.counters_only();
  return row;
}

std::string write_json(const std::vector<TrackerRow>& rows) {
  const char* env = std::getenv("VCOMP_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_tracker.json";
  std::ofstream out(path);
  if (!out.good()) return {};
  out << "{\n"
      << "  \"bench\": \"tracker\",\n"
      << "  \"threads\": " << benchutil::threads_used() << ",\n"
      << "  \"quick\": " << (benchutil::quick_mode() ? "true" : "false")
      << ",\n"
      << "  \"circuits\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TrackerRow& r = rows[i];
    out << "    {\"circuit\": \"" << r.circuit << "\", \"gates\": " << r.gates
        << ", \"chain\": " << r.chain << ", \"faults\": " << r.faults
        << ", \"cycles\": " << r.cycles << ", \"seconds\": " << r.seconds
        << ", \"classify_faults_per_sec\": " << r.classify_faults_per_sec
        << ", \"advance_lanes_per_sec\": " << r.advance_lanes_per_sec
        << ", \"shift_seconds\": " << r.shift_seconds << ", \"counters\": {";
    for (std::size_t c = 0; c < r.counters.values.size(); ++c)
      out << (c > 0 ? ", " : "") << "\"" << r.counters.values[c].first
          << "\": " << r.counters.values[c].second;
    out << "}}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return path;
}

}  // namespace

int main() {
  const bool quick = benchutil::quick_mode();
  const std::size_t cycles = quick ? 60 : 240;

  std::vector<netgen::CircuitProfile> profiles = {
      netgen::profile("s444"), netgen::profile("s526"),
      netgen::profile("s1423")};
  if (!quick) profiles.push_back(netgen::profile("s5378"));
  profiles = benchutil::filter_circuits(std::move(profiles));

  std::vector<TrackerRow> rows;
  std::printf("%-10s %8s %6s %8s %8s %14s %14s %10s\n", "circuit", "gates",
              "chain", "faults", "cycles", "Mclassify/s", "Madvance/s",
              "seconds");
  for (const auto& profile : profiles) {
    rows.push_back(bench_circuit(profile, cycles));
    const TrackerRow& r = rows.back();
    std::printf("%-10s %8zu %6zu %8zu %8zu %14.2f %14.2f %10.3f\n",
                r.circuit.c_str(), r.gates, r.chain, r.faults, r.cycles,
                r.classify_faults_per_sec / 1e6, r.advance_lanes_per_sec / 1e6,
                r.seconds);
  }

  const std::string path = write_json(rows);
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
