// Table 4: test-vector selection policies — Random (randomly ordered fault
// list), Hardness (hardest-first order) and Most-faults (greedy candidate
// scoring) — under variable shift, plain NXOR observation.  A fourth `adi`
// row (ascending Accidental Detection Index, not in the paper's table)
// rides along for comparison.
//
// Env: VCOMP_QUICK=1 restricts to the four smallest circuits.

#include <cstdio>
#include <map>

#include "bench_util.hpp"

using namespace vcomp;
using benchutil::PaperRef;

namespace {

struct PaperRow {
  PaperRef random, hardness, most;
};

// Table 4 of the paper.
const std::map<std::string, PaperRow> kPaper = {
    {"s444", {{0.81, 0.54}, {0.77, 0.50}, {0.73, 0.53}}},
    {"s526", {{0.86, 0.62}, {0.81, 0.58}, {0.71, 0.52}}},
    {"s641", {{0.88, 0.26}, {0.84, 0.24}, {0.72, 0.20}}},
    {"s953", {{0.70, 0.24}, {0.57, 0.17}, {0.52, 0.14}}},
    {"s1196", {{0.66, 0.15}, {0.53, 0.09}, {0.48, 0.09}}},
    {"s1423", {{0.75, 0.50}, {0.79, 0.55}, {0.68, 0.46}}},
    {"s5378", {{0.73, 0.55}, {0.63, 0.48}, {0.57, 0.45}}},
    {"s9234", {{1.02, 0.94}, {0.98, 0.91}, {0.68, 0.63}}},
};

}  // namespace

int main() {
  std::printf("=== Table 4: selection of test vectors (Random / Hardness / "
              "Most-faults) ===\n\n");

  auto profiles = netgen::table234_profiles();
  profiles = benchutil::select_circuits(std::move(profiles), 4);

  report::Table table({"circ", "selection", "TV", "ex", "m", "t", "paper m",
                       "paper t"});
  constexpr std::size_t kCfgs = 4;
  benchutil::RatioAverager avg[kCfgs][2];
  benchutil::BenchJson json("table4");

  const auto labs = core::make_labs(profiles);  // parallel baselines
  for (const auto& lab_ptr : labs) {
    const auto& lab = *lab_ptr;
    benchutil::Stopwatch sw;
    const auto& paper = kPaper.at(lab.name());

    struct Cfg {
      core::SelectionPolicy sel;
      PaperRef ref;
    };
    const Cfg cfgs[kCfgs] = {
        {core::SelectionPolicy::Random, paper.random},
        {core::SelectionPolicy::Hardness, paper.hardness},
        {core::SelectionPolicy::MostFaults, paper.most},
        {core::SelectionPolicy::Adi, {}},  // not in the paper's table
    };
    std::vector<core::StitchOptions> sweep(kCfgs);
    for (std::size_t k = 0; k < kCfgs; ++k) sweep[k].selection = cfgs[k].sel;
    // One shared lab, all four strategy rows fanned out together.
    const auto results = lab.run_many(sweep);
    const double sweep_seconds = sw.seconds();
    for (std::size_t k = 0; k < kCfgs; ++k) {
      const auto& r = results[k];
      avg[k][0].add(r.memory_ratio);
      avg[k][1].add(r.time_ratio);
      // Per-row seconds are the whole sweep's wall time (the rows ran
      // concurrently; only the aggregate is meaningful).
      json.add(lab.name(), core::to_string(cfgs[k].sel),
               benchutil::TimedResult{r, sweep_seconds});
      table.add_row({lab.name(), core::to_string(cfgs[k].sel),
                     report::Table::num(r.vectors_applied),
                     report::Table::num(r.extra_full_vectors),
                     report::Table::ratio(r.memory_ratio),
                     report::Table::ratio(r.time_ratio),
                     benchutil::ref_str(cfgs[k].ref.m),
                     benchutil::ref_str(cfgs[k].ref.t)});
    }
    std::fprintf(stderr, "[table4] %s done in %.1fs\n", lab.name().c_str(),
                 sw.seconds());
  }
  table.add_row({"Ave", "random", "", "", avg[0][0].str(), avg[0][1].str(),
                 "0.80", "0.48"});
  table.add_row({"Ave", "hardness", "", "", avg[1][0].str(), avg[1][1].str(),
                 "0.74", "0.44"});
  table.add_row({"Ave", "most-faults", "", "", avg[2][0].str(),
                 avg[2][1].str(), "0.64", "0.38"});
  table.add_row({"Ave", "adi", "", "", avg[3][0].str(), avg[3][1].str(), "-",
                 "-"});
  std::printf("%s", table.to_string().c_str());
  json.write();
  return 0;
}
