// Table 5: the final scheme (variable shift + most-faults selection, plain
// NXOR so the comparison carries zero hardware overhead) on the paper's
// large ISCAS89 circuits.
//
// The paper's hallmark datapoint — s35932, whose easy-to-test fault
// population lets tiny shifts carry almost the whole test set (m=0.20,
// t=0.07) — is reproduced through the profile's `easiness` knob.
//
// Env: VCOMP_QUICK=1 runs only s5378 and s9234.

#include <cstdio>
#include <map>

#include "bench_util.hpp"

using namespace vcomp;
using benchutil::PaperRef;

namespace {

// Table 5 of the paper.
const std::map<std::string, PaperRef> kPaper = {
    {"s5378", {0.76, 0.57}},  {"s9234", {0.75, 0.68}},
    {"s13207", {0.74, 0.65}}, {"s15850", {0.60, 0.51}},
    {"s35932", {0.20, 0.07}}, {"s38417", {0.60, 0.57}},
    {"s38584", {0.63, 0.55}},
};

}  // namespace

int main() {
  std::printf("=== Table 5: large circuits, final scheme (variable shift + "
              "most-faults, no XOR hardware) ===\n\n");

  auto profiles = netgen::table5_profiles();
  profiles = benchutil::select_circuits(std::move(profiles), 2);

  report::Table table({"circ", "I/O", "scan#", "aTV", "TV", "ex", "m", "t",
                       "paper m", "paper t"});
  benchutil::RatioAverager avg_m, avg_t;
  benchutil::BenchJson json("table5");

  // One configuration per circuit, so the whole (baseline + stitched run)
  // of each profile is one independent task on the process pool.
  struct Run {
    std::size_t atv = 0;
    core::StitchResult result;
    double seconds = 0;
  };
  const auto runs = util::parallel_map(profiles.size(), [&](std::size_t i) {
    benchutil::Stopwatch sw;
    core::CircuitLab lab(profiles[i]);
    Run run;
    run.atv = lab.atv();
    run.result = lab.run(core::StitchOptions{});
    run.seconds = sw.seconds();
    std::fprintf(stderr, "[table5] %s done in %.1fs\n",
                 profiles[i].name.c_str(), sw.seconds());
    return run;
  });

  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& prof = profiles[i];
    const auto& r = runs[i].result;
    avg_m.add(r.memory_ratio);
    avg_t.add(r.time_ratio);
    const auto& ref = kPaper.at(prof.name);
    json.add(prof.name, "final", {r, runs[i].seconds});
    table.add_row({prof.name,
                   std::to_string(prof.num_pi) + "/" +
                       std::to_string(prof.num_po),
                   report::Table::num(prof.num_ff),
                   report::Table::num(runs[i].atv),
                   report::Table::num(r.vectors_applied),
                   report::Table::num(r.extra_full_vectors),
                   report::Table::ratio(r.memory_ratio),
                   report::Table::ratio(r.time_ratio),
                   benchutil::ref_str(ref.m), benchutil::ref_str(ref.t)});
    std::printf("%s: aTV=%zu TV=%zu ex=%zu m=%.2f t=%.2f  (paper %s/%s)\n",
                prof.name.c_str(), runs[i].atv, r.vectors_applied,
                r.extra_full_vectors, r.memory_ratio, r.time_ratio,
                benchutil::ref_str(ref.m).c_str(),
                benchutil::ref_str(ref.t).c_str());
  }
  table.add_row({"Ave", "", "", "", "", "", avg_m.str(), avg_t.str(),
                 "0.61", "0.51"});
  std::printf("%s", table.to_string().c_str());
  json.write();
  return 0;
}
