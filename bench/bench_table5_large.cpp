// Table 5: the final scheme (variable shift + most-faults selection, plain
// NXOR so the comparison carries zero hardware overhead) on the paper's
// large ISCAS89 circuits.
//
// The paper's hallmark datapoint — s35932, whose easy-to-test fault
// population lets tiny shifts carry almost the whole test set (m=0.20,
// t=0.07) — is reproduced through the profile's `easiness` knob.
//
// Env: VCOMP_QUICK=1 runs only s5378 and s9234.

#include <cstdio>
#include <map>

#include "bench_util.hpp"

using namespace vcomp;
using benchutil::PaperRef;

namespace {

// Table 5 of the paper.
const std::map<std::string, PaperRef> kPaper = {
    {"s5378", {0.76, 0.57}},  {"s9234", {0.75, 0.68}},
    {"s13207", {0.74, 0.65}}, {"s15850", {0.60, 0.51}},
    {"s35932", {0.20, 0.07}}, {"s38417", {0.60, 0.57}},
    {"s38584", {0.63, 0.55}},
};

}  // namespace

int main() {
  std::printf("=== Table 5: large circuits, final scheme (variable shift + "
              "most-faults, no XOR hardware) ===\n\n");

  auto profiles = netgen::table5_profiles();
  if (benchutil::quick_mode()) profiles.resize(2);

  report::Table table({"circ", "I/O", "scan#", "aTV", "TV", "ex", "m", "t",
                       "paper m", "paper t"});
  benchutil::RatioAverager avg_m, avg_t;

  for (const auto& prof : profiles) {
    benchutil::Stopwatch sw;
    core::CircuitLab lab(prof);
    core::StitchOptions opts;
    const auto r = lab.run(opts);
    avg_m.add(r.memory_ratio);
    avg_t.add(r.time_ratio);
    const auto& ref = kPaper.at(prof.name);
    table.add_row({prof.name,
                   std::to_string(prof.num_pi) + "/" +
                       std::to_string(prof.num_po),
                   report::Table::num(prof.num_ff),
                   report::Table::num(lab.atv()),
                   report::Table::num(r.vectors_applied),
                   report::Table::num(r.extra_full_vectors),
                   report::Table::ratio(r.memory_ratio),
                   report::Table::ratio(r.time_ratio),
                   benchutil::ref_str(ref.m), benchutil::ref_str(ref.t)});
    // Stream each row as it lands (the full table reprints at the end).
    std::printf("%s: aTV=%zu TV=%zu ex=%zu m=%.2f t=%.2f  (paper %s/%s)\n",
                prof.name.c_str(), lab.atv(), r.vectors_applied,
                r.extra_full_vectors, r.memory_ratio, r.time_ratio,
                benchutil::ref_str(ref.m).c_str(),
                benchutil::ref_str(ref.t).c_str());
    std::fflush(stdout);
    std::fprintf(stderr, "[table5] %s done in %.1fs\n", prof.name.c_str(),
                 sw.seconds());
  }
  table.add_row({"Ave", "", "", "", "", "", avg_m.str(), avg_t.str(),
                 "0.61", "0.51"});
  std::printf("%s", table.to_string().c_str());
  return 0;
}
